// Package transport runs the consensus algorithms over real network
// connections: one process per node, a hub process standing in for the
// broadcast medium. The hub enforces the synchronous-round semantics of
// §II-A — it collects every node's broadcast, lets a message adversary
// choose E(t) (in a deployment this is the radio environment; in a lab
// it is configurable), tags deliveries with receiver-local ports, and
// barriers the round. Nodes never see identities, only ports: the
// anonymity of the model is preserved on the wire.
//
// The framing is deliberately tiny: every frame is one type byte
// followed by varint-encoded fields; message payloads reuse the wire
// package's O(log n)-bit encoding.
package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"anondyn/internal/core"
	"anondyn/internal/wire"
)

// Protocol version, sent in the hello/config handshake. v2 added the
// shard frames (0x08–0x0D) for coordinator↔worker sweep dispatch; v3
// added live worker telemetry (the 0x0E metrics frame and the task's
// metrics cadence field); v4 turned the coordinator into a resident
// control plane: join/leave frames for elastic worker membership,
// submit/sweep-status/sweep-rows frames for queueing sweeps against a
// running service, and a shared-secret token in every handshake.
const protocolVersion = 4

// Frame types.
const (
	frameHello      byte = 0x01 // node → hub: version
	frameConfig     byte = 0x02 // hub → node: version, n, selfPort
	frameRoundStart byte = 0x03 // hub → node: round
	frameBroadcast  byte = 0x04 // node → hub: message
	frameDeliver    byte = 0x05 // hub → node: round, count, (port, message)*
	frameStatus     byte = 0x06 // node → hub: phase, value, decided(+output)
	frameStop       byte = 0x07 // hub → node / coordinator → worker: end of session

	// Shard protocol (coordinator ↔ sweep worker), layered on the same
	// framing: one hello/ready handshake per connection, then task →
	// record-stream → done exchanges until the coordinator stops.
	frameShardHello  byte = 0x08 // coordinator → worker: version
	frameShardReady  byte = 0x09 // worker → coordinator: version, capacity
	frameShardTask   byte = 0x0a // coordinator → worker: shard, lo, hi, seeds, maxPending, spec
	frameShardRecord byte = 0x0b // worker → coordinator: run, decided, rounds, bytes, outbits, violation
	frameShardDone   byte = 0x0c // worker → coordinator: shard, count
	frameShardErr    byte = 0x0d // worker → coordinator: shard, message

	// v3: live telemetry, interleaved with the record stream at the
	// cadence the task requests (ShardTask.MetricsEveryRuns).
	frameShardMetrics byte = 0x0e // worker → coordinator: shard, runs, rounds, delivered, busy, workers

	// v4: resident control plane. Workers join (and leave) an already
	// running coordinator instead of being dialed from a fixed list, and
	// sweep clients submit specs against the same port. The first frame
	// of an inbound connection names its role: join for a worker,
	// submit for a sweep client, hello for a legacy coordinator dialing
	// a listening worker.
	frameShardJoin    byte = 0x0f // worker → control plane: version, capacity, token
	frameShardWelcome byte = 0x10 // control plane → worker: version
	frameShardLeave   byte = 0x11 // worker → control plane: graceful leave (between tasks)
	frameSubmit       byte = 0x12 // client → control plane: version, seeds, shards, token, name, spec
	frameSubmitOK     byte = 0x13 // control plane → client: sweep id, total runs
	frameSweepStatus  byte = 0x14 // control plane → client: id, state, done, total, requeues, workers
	frameSweepRows    byte = 0x15 // control plane → client: id, rows (JSON)
	frameSweepFail    byte = 0x16 // control plane → client: id, message

	// Read-only control-plane introspection (dynagrid -status): one
	// request, one info frame, connection closed.
	frameStatusReq  byte = 0x17 // client → control plane: version, token
	frameStatusInfo byte = 0x18 // control plane → client: workers, count, then per sweep: id, state, done, total, requeues, name
)

// Errors surfaced by the protocol layer.
var (
	ErrBadFrame  = errors.New("transport: malformed frame")
	ErrBadType   = errors.New("transport: unexpected frame type")
	ErrVersion   = errors.New("transport: protocol version mismatch")
	ErrShutdown  = errors.New("transport: connection closed by peer")
	ErrAuth      = errors.New("transport: shard auth failed (token mismatch)")
	ErrWorkerLeft = errors.New("transport: worker left the control plane")
	errShortRead = errors.New("transport: short read")
)

// conn wraps a stream with buffered varint-friendly framing. All methods
// are synchronous; the round structure of the protocol means there is
// never more than one outstanding frame per direction.
type conn struct {
	r *bufio.Reader
	w *bufio.Writer
}

func newConn(rw io.ReadWriter) *conn {
	return &conn{r: bufio.NewReader(rw), w: bufio.NewWriter(rw)}
}

func (c *conn) writeFrame(frameType byte, fields ...uint64) error {
	if err := c.w.WriteByte(frameType); err != nil {
		return fmt.Errorf("transport: write frame type: %w", err)
	}
	var buf [binary.MaxVarintLen64]byte
	for _, f := range fields {
		n := binary.PutUvarint(buf[:], f)
		if _, err := c.w.Write(buf[:n]); err != nil {
			return fmt.Errorf("transport: write field: %w", err)
		}
	}
	return nil
}

func (c *conn) writeUvarint(v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := c.w.Write(buf[:n])
	return err
}

func (c *conn) writeBytes(b []byte) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(b)))
	if _, err := c.w.Write(buf[:n]); err != nil {
		return err
	}
	_, err := c.w.Write(b)
	return err
}

func (c *conn) flush() error { return c.w.Flush() }

func (c *conn) readType() (byte, error) {
	b, err := c.r.ReadByte()
	if err != nil {
		if errors.Is(err, io.EOF) {
			return 0, ErrShutdown
		}
		return 0, err
	}
	return b, nil
}

func (c *conn) readUvarint() (uint64, error) {
	v, err := binary.ReadUvarint(c.r)
	if err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, fmt.Errorf("%w: %w", ErrBadFrame, errShortRead)
		}
		return 0, err
	}
	return v, nil
}

func (c *conn) readBytes(maxLen int) ([]byte, error) {
	n, err := c.readUvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(maxLen) {
		return nil, fmt.Errorf("%w: payload of %d bytes exceeds limit %d", ErrBadFrame, n, maxLen)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(c.r, b); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadFrame, err)
	}
	return b, nil
}

// maxWireMessage bounds a single consensus message on the wire; even
// full-information histories in the tests stay far below this.
const maxWireMessage = 1 << 16

// writeMessage frames a consensus message.
func (c *conn) writeMessage(m core.Message) error {
	return c.writeBytes(wire.Encode(nil, m))
}

// readMessage parses a framed consensus message.
func (c *conn) readMessage() (core.Message, error) {
	b, err := c.readBytes(maxWireMessage)
	if err != nil {
		return core.Message{}, err
	}
	m, n, err := wire.Decode(b)
	if err != nil {
		return core.Message{}, fmt.Errorf("%w: %w", ErrBadFrame, err)
	}
	if n != len(b) {
		return core.Message{}, fmt.Errorf("%w: %d trailing bytes", ErrBadFrame, len(b)-n)
	}
	return m, nil
}

// Status is a node's end-of-round report to the hub.
type Status struct {
	Phase   int
	Value   float64
	Decided bool
	Output  float64
}

func (c *conn) writeStatus(s Status) error {
	decided := uint64(0)
	if s.Decided {
		decided = 1
	}
	if err := c.writeFrame(frameStatus, uint64(s.Phase), quant(s.Value), decided, quant(s.Output)); err != nil {
		return err
	}
	return nil
}

func (c *conn) readStatusBody() (Status, error) {
	phase, err := c.readUvarint()
	if err != nil {
		return Status{}, err
	}
	val, err := c.readUvarint()
	if err != nil {
		return Status{}, err
	}
	decided, err := c.readUvarint()
	if err != nil {
		return Status{}, err
	}
	out, err := c.readUvarint()
	if err != nil {
		return Status{}, err
	}
	return Status{
		Phase:   int(phase),
		Value:   dequant(val),
		Decided: decided == 1,
		Output:  dequant(out),
	}, nil
}

// Value quantization for status frames mirrors the wire package's
// fixed-point scheme (30 fractional bits over [0,1]).
func quant(v float64) uint64 {
	if v <= 0 {
		return 0
	}
	if v >= 1 {
		return 1 << 30
	}
	return uint64(v*(1<<30) + 0.5)
}

func dequant(q uint64) float64 {
	if q > 1<<30 {
		q = 1 << 30
	}
	return float64(q) / (1 << 30)
}
