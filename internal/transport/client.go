package transport

import (
	"fmt"
	"net"
	"time"

	"anondyn/internal/core"
)

// ClientConfig configures one node process.
type ClientConfig struct {
	// NewProcess builds the node's algorithm once the hub has announced
	// the network size and the node's self port. Required. This is
	// where the caller picks DAC/DBAC and supplies the input.
	NewProcess func(n, selfPort int) (core.Process, error)
	// IOTimeout bounds each read/write; 0 = none.
	IOTimeout time.Duration
}

// ClientResult is a node's view of the finished execution.
type ClientResult struct {
	N        int
	SelfPort int
	Rounds   int
	Output   float64
	Decided  bool
}

// RunClient connects to a hub, participates in the synchronous
// execution, and returns after the hub's stop frame. It drives exactly
// one core.Process; the process never learns anything but n, its self
// port, and port-tagged deliveries — anonymity end to end.
func RunClient(addr string, cfg ClientConfig) (*ClientResult, error) {
	if cfg.NewProcess == nil {
		return nil, fmt.Errorf("transport: client needs a NewProcess factory")
	}
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	defer raw.Close()
	deadline := func() {
		if cfg.IOTimeout > 0 {
			raw.SetDeadline(time.Now().Add(cfg.IOTimeout)) //nolint:errcheck
		}
	}
	c := newConn(raw)

	// Handshake.
	deadline()
	if err := c.writeFrame(frameHello, protocolVersion); err != nil {
		return nil, err
	}
	if err := c.flush(); err != nil {
		return nil, err
	}
	ft, err := c.readType()
	if err != nil {
		return nil, err
	}
	if ft != frameConfig {
		return nil, fmt.Errorf("%w: got 0x%02x, want config", ErrBadType, ft)
	}
	ver, err := c.readUvarint()
	if err != nil {
		return nil, err
	}
	if ver != protocolVersion {
		return nil, fmt.Errorf("%w: hub speaks v%d, client v%d", ErrVersion, ver, protocolVersion)
	}
	nU, err := c.readUvarint()
	if err != nil {
		return nil, err
	}
	selfPortU, err := c.readUvarint()
	if err != nil {
		return nil, err
	}
	n, selfPort := int(nU), int(selfPortU)

	proc, err := cfg.NewProcess(n, selfPort)
	if err != nil {
		return nil, fmt.Errorf("transport: build process: %w", err)
	}

	res := &ClientResult{N: n, SelfPort: selfPort}
	for {
		deadline()
		ft, err := c.readType()
		if err != nil {
			return nil, err
		}
		switch ft {
		case frameRoundStart:
			if _, err := c.readUvarint(); err != nil { // round index (informational)
				return nil, err
			}
			if err := c.writeMessageFrame(proc.Broadcast()); err != nil {
				return nil, err
			}
			if err := c.flush(); err != nil {
				return nil, err
			}

		case frameDeliver:
			if _, err := c.readUvarint(); err != nil { // round index
				return nil, err
			}
			count, err := c.readUvarint()
			if err != nil {
				return nil, err
			}
			if count > uint64(n) {
				return nil, fmt.Errorf("%w: %d deliveries for n=%d", ErrBadFrame, count, n)
			}
			for i := uint64(0); i < count; i++ {
				portU, err := c.readUvarint()
				if err != nil {
					return nil, err
				}
				if portU >= uint64(n) {
					return nil, fmt.Errorf("%w: port %d out of range", ErrBadFrame, portU)
				}
				m, err := c.readMessage()
				if err != nil {
					return nil, err
				}
				proc.Deliver(core.Delivery{Port: int(portU), Msg: m})
			}
			proc.EndRound()
			res.Rounds++
			out, decided := proc.Output()
			st := Status{Phase: proc.Phase(), Value: proc.Value(), Decided: decided, Output: out}
			if err := c.writeStatus(st); err != nil {
				return nil, err
			}
			if err := c.flush(); err != nil {
				return nil, err
			}

		case frameStop:
			res.Output, res.Decided = proc.Output()
			return res, nil

		default:
			return nil, fmt.Errorf("%w: 0x%02x", ErrBadType, ft)
		}
	}
}

// writeMessageFrame sends a broadcast frame.
func (c *conn) writeMessageFrame(m core.Message) error {
	if err := c.writeFrame(frameBroadcast); err != nil {
		return err
	}
	return c.writeMessage(m)
}
