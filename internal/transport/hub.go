package transport

import (
	"errors"
	"fmt"
	"net"
	"slices"
	"sync"
	"time"

	"anondyn/internal/adversary"
	"anondyn/internal/core"
	"anondyn/internal/metrics"
	"anondyn/internal/network"
	"anondyn/internal/wire"
)

// The hub realizes the broadcast primitive of §II-A for honest senders:
// it accepts exactly one broadcast per node per round and relays it
// along the adversary's edge set. Byzantine PER-RECEIVER equivocation —
// which the model permits because port numberings are local — cannot be
// expressed through this relay; study Byzantine behavior with the
// simulation engines (internal/sim), which drive fault.Strategy
// implementations directly.

// HubConfig configures the round coordinator.
type HubConfig struct {
	// N is the number of nodes that must connect before rounds start.
	N int
	// Adversary chooses E(t) per round — the configurable stand-in for
	// the radio environment. Required.
	Adversary adversary.Adversary
	// Ports holds each node's receiver-local numbering; nil = identity.
	// Node IDs are a hub-internal notion (connection order); nodes only
	// ever see ports.
	Ports network.Ports
	// MaxRounds bounds the execution; 0 = DefaultMaxRounds.
	MaxRounds int
	// IOTimeout bounds each read/write to a node; 0 = no deadline. A
	// synchronous protocol over real links needs this: one hung node
	// otherwise blocks the round forever.
	IOTimeout time.Duration
	// Log, when non-nil, receives diagnostic lines (Printf-style) —
	// notably rejected handshakes, which release their slot and would
	// otherwise be invisible while the hub keeps waiting.
	Log func(format string, args ...any)
	// Metrics, when non-nil, receives one RoundDone per hub round — the
	// same sample semantics as the simulation engines, so a Collector
	// serves both. Purely observational.
	Metrics metrics.Sink
}

// DefaultMaxRounds caps hub executions without an explicit bound.
const DefaultMaxRounds = 100_000

// HubResult summarizes a hub-coordinated execution.
type HubResult struct {
	Rounds      int
	Decided     bool
	Outputs     map[int]float64
	DecideRound map[int]int
	Trace       network.Trace
}

// Hub coordinates one synchronous execution over real connections.
type Hub struct {
	cfg   HubConfig
	ln    net.Listener
	conns []*hubConn

	// round scratch, reused across rounds: collected broadcasts, each
	// sender's wire encoding (produced ONCE per round and written to
	// every link it traverses), the per-receiver delivery entries and
	// the in-neighbor gather buffer.
	broadcasts []core.Message
	encoded    [][]byte
	entries    []delivEntry
	inbuf      []int

	mu     sync.Mutex
	closed bool
}

// delivEntry is one (port, sender) delivery slot while a receiver's
// round frame is assembled.
type delivEntry struct {
	port   int
	sender int
}

type hubConn struct {
	id   int
	raw  net.Conn
	c    *conn
	snap core.Snapshot
}

// NewHub validates the configuration and starts listening on addr
// (e.g. "127.0.0.1:0"). Call Serve to accept nodes and run rounds.
func NewHub(addr string, cfg HubConfig) (*Hub, error) {
	if cfg.N < 1 {
		return nil, fmt.Errorf("transport: hub needs n ≥ 1, got %d", cfg.N)
	}
	if cfg.Adversary == nil {
		return nil, errors.New("transport: hub needs an adversary (use adversary.NewComplete for a benign medium)")
	}
	if cfg.Ports != nil && len(cfg.Ports) != cfg.N {
		return nil, fmt.Errorf("transport: %d port numberings for n=%d", len(cfg.Ports), cfg.N)
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = DefaultMaxRounds
	}
	if cfg.Ports == nil {
		cfg.Ports = network.IdentityPorts(cfg.N)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return &Hub{
		cfg: cfg, ln: ln,
		broadcasts: make([]core.Message, cfg.N),
		encoded:    make([][]byte, cfg.N),
	}, nil
}

// Addr returns the hub's listen address (useful with ":0").
func (h *Hub) Addr() string { return h.ln.Addr().String() }

// Close tears the hub down; safe to call concurrently with Serve.
func (h *Hub) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	h.ln.Close()
	for _, hc := range h.conns {
		if hc != nil {
			hc.raw.Close()
		}
	}
}

// Serve accepts n nodes, performs the handshake, runs rounds until
// every node reports a decision (or MaxRounds), sends stop frames, and
// returns the result. It runs the whole execution on the calling
// goroutine.
func (h *Hub) Serve() (*HubResult, error) {
	defer h.Close()
	if err := h.accept(); err != nil {
		return nil, err
	}
	res := &HubResult{
		Outputs:     make(map[int]float64, h.cfg.N),
		DecideRound: make(map[int]int, h.cfg.N),
	}
	view := &hubView{hub: h}
	for round := 0; round < h.cfg.MaxRounds; round++ {
		edges := h.cfg.Adversary.Edges(round, view)
		res.Trace = append(res.Trace, edges.Clone())
		if err := h.runRound(round, edges, res); err != nil {
			return nil, fmt.Errorf("round %d: %w", round, err)
		}
		res.Rounds = round + 1
		if len(res.Outputs) == h.cfg.N {
			res.Decided = true
			break
		}
	}
	h.broadcastStop()
	return res, nil
}

// maxHandshakeRejections bounds consecutive rejected handshakes: a
// stale-version node in a restart loop must surface as an error, not
// an infinite reject/accept spin.
const maxHandshakeRejections = 32

// accept waits for all n nodes and handshakes each. A connection that
// fails the handshake at the protocol level — wrong version, garbage
// frames, or a peer that disconnects before completing it — releases
// its slot (logged via HubConfig.Log) and the hub keeps waiting for a
// replacement, so a rejected node never burns one of the n seats.
// I/O timeouts (a connected but wedged node), listener errors, and
// maxHandshakeRejections consecutive rejections abort the execution.
func (h *Hub) accept() error {
	h.conns = make([]*hubConn, h.cfg.N)
	rejected := 0
	for id := 0; id < h.cfg.N; {
		raw, err := h.ln.Accept()
		if err != nil {
			return fmt.Errorf("transport: accept node %d: %w", id, err)
		}
		hc := &hubConn{id: id, raw: raw, c: newConn(raw)}
		if err := h.handshake(hc); err != nil {
			raw.Close()
			if handshakeRetryable(err) {
				rejected++
				h.logf("transport: hub rejected a connection for node slot %d (%d rejections so far): %v", id, rejected, err)
				if rejected >= maxHandshakeRejections {
					return fmt.Errorf("transport: handshake node %d: %d consecutive rejections, last: %w", id, rejected, err)
				}
				continue // slot released; await a replacement node
			}
			return fmt.Errorf("transport: handshake node %d: %w", id, err)
		}
		h.conns[id] = hc
		id++
		rejected = 0
	}
	return nil
}

func (h *Hub) logf(format string, args ...any) {
	if h.cfg.Log != nil {
		h.cfg.Log(format, args...)
	}
}

// handshakeRetryable classifies handshake failures: protocol rejections
// and early disconnects free the slot, anything else (notably deadline
// expiry on a silent-but-connected node) aborts.
func handshakeRetryable(err error) bool {
	return errors.Is(err, ErrVersion) || errors.Is(err, ErrBadType) ||
		errors.Is(err, ErrBadFrame) || errors.Is(err, ErrShutdown)
}

func (h *Hub) handshake(hc *hubConn) error {
	h.deadline(hc)
	ft, err := hc.c.readType()
	if err != nil {
		return err
	}
	if ft != frameHello {
		return fmt.Errorf("%w: got 0x%02x, want hello", ErrBadType, ft)
	}
	ver, err := hc.c.readUvarint()
	if err != nil {
		return err
	}
	if ver != protocolVersion {
		return fmt.Errorf("%w: node speaks v%d, hub v%d", ErrVersion, ver, protocolVersion)
	}
	selfPort := h.cfg.Ports[hc.id].Port(hc.id)
	if err := hc.c.writeFrame(frameConfig, protocolVersion, uint64(h.cfg.N), uint64(selfPort)); err != nil {
		return err
	}
	return hc.c.flush()
}

// runRound executes one synchronous round: collect broadcasts, route
// per the edge set, collect statuses.
func (h *Hub) runRound(round int, edges *network.EdgeSet, res *HubResult) error {
	// (1) Round start + broadcast collection.
	for _, hc := range h.conns {
		h.deadline(hc)
		if err := hc.c.writeFrame(frameRoundStart, uint64(round)); err != nil {
			return fmt.Errorf("node %d: %w", hc.id, err)
		}
		if err := hc.c.flush(); err != nil {
			return fmt.Errorf("node %d: %w", hc.id, err)
		}
	}
	for _, hc := range h.conns {
		h.deadline(hc)
		ft, err := hc.c.readType()
		if err != nil {
			return fmt.Errorf("node %d: %w", hc.id, err)
		}
		if ft != frameBroadcast {
			return fmt.Errorf("node %d: %w: got 0x%02x, want broadcast", hc.id, ErrBadType, ft)
		}
		m, err := hc.c.readMessage()
		if err != nil {
			return fmt.Errorf("node %d: %w", hc.id, err)
		}
		h.broadcasts[hc.id] = m
	}

	// Encode each sender's broadcast exactly once per round, into a
	// buffer reused across rounds: a sender with k out-links used to
	// pay k encodes, now its bytes are written to every link verbatim.
	for _, hc := range h.conns {
		h.encoded[hc.id] = wire.Encode(h.encoded[hc.id][:0], h.broadcasts[hc.id])
	}

	// (2) Deliveries, tagged with each receiver's local ports, in
	// ascending port order (the sim engines' semantics). As in the
	// engines, only the receiver's actual in-neighbors are walked and
	// the gather is re-sorted into port order when the numbering is not
	// the identity.
	delivered := 0
	for _, hc := range h.conns {
		numbering := h.cfg.Ports[hc.id]
		h.entries = h.entries[:0]
		h.inbuf = edges.InNeighborsInto(hc.id, h.inbuf[:0])
		for _, u := range h.inbuf {
			h.entries = append(h.entries, delivEntry{port: numbering.PortOf(u), sender: u})
		}
		if !numbering.IsIdentity() {
			slices.SortFunc(h.entries, func(a, b delivEntry) int { return a.port - b.port })
		}
		h.deadline(hc)
		if err := hc.c.writeFrame(frameDeliver, uint64(round), uint64(len(h.entries))); err != nil {
			return fmt.Errorf("node %d: %w", hc.id, err)
		}
		for _, e := range h.entries {
			if err := hc.c.writeUvarint(uint64(e.port)); err != nil {
				return fmt.Errorf("node %d: %w", hc.id, err)
			}
			if err := hc.c.writeBytes(h.encoded[e.sender]); err != nil {
				return fmt.Errorf("node %d: %w", hc.id, err)
			}
		}
		if err := hc.c.flush(); err != nil {
			return fmt.Errorf("node %d: %w", hc.id, err)
		}
		delivered += len(h.entries)
	}

	// (3) Status barrier.
	for _, hc := range h.conns {
		h.deadline(hc)
		ft, err := hc.c.readType()
		if err != nil {
			return fmt.Errorf("node %d: %w", hc.id, err)
		}
		if ft != frameStatus {
			return fmt.Errorf("node %d: %w: got 0x%02x, want status", hc.id, ErrBadType, ft)
		}
		st, err := hc.c.readStatusBody()
		if err != nil {
			return fmt.Errorf("node %d: %w", hc.id, err)
		}
		hc.snap = core.Snapshot{Phase: st.Phase, Value: st.Value, Decided: st.Decided}
		if st.Decided {
			if _, seen := res.Outputs[hc.id]; !seen {
				res.Outputs[hc.id] = st.Output
				res.DecideRound[hc.id] = round
			}
		}
	}
	if h.cfg.Metrics != nil {
		h.emitRound(round, delivered, res)
	}
	return nil
}

// emitRound mirrors the engines' per-round sample: the hub has no
// crashes (every connected node runs), so Running is n, Lost is the
// adversary-suppressed remainder of the n(n−1) possible links (no
// self-loops in the model), and Range spans the end-of-round status
// values.
func (h *Hub) emitRound(round, delivered int, res *HubResult) {
	s := metrics.RoundSample{
		Round:     round,
		Delivered: delivered,
		Lost:      h.cfg.N*(h.cfg.N-1) - delivered,
		Running:   h.cfg.N,
		Decided:   len(res.Outputs),
	}
	var lo, hi float64
	for i, hc := range h.conns {
		v := hc.snap.Value
		if i == 0 || v < lo {
			lo = v
		}
		if i == 0 || v > hi {
			hi = v
		}
	}
	if h.cfg.N > 0 {
		s.Range = hi - lo
	}
	h.cfg.Metrics.RoundDone(s)
}

func (h *Hub) broadcastStop() {
	for _, hc := range h.conns {
		if hc == nil {
			continue
		}
		h.deadline(hc)
		if err := hc.c.writeFrame(frameStop); err == nil {
			hc.c.flush() //nolint:errcheck // best effort during shutdown
		}
	}
}

func (h *Hub) deadline(hc *hubConn) {
	if h.cfg.IOTimeout > 0 {
		hc.raw.SetDeadline(time.Now().Add(h.cfg.IOTimeout)) //nolint:errcheck
	}
}

// hubView exposes start-of-round snapshots to the adversary.
type hubView struct {
	hub *Hub
}

func (v *hubView) N() int { return v.hub.cfg.N }

func (v *hubView) Snapshot(i int) core.Snapshot { return v.hub.conns[i].snap }
