package anondyn_test

// The two contracts of the metrics tap, pinned as properties:
//
//   - Parity: attaching a metrics sink NEVER perturbs results. The
//     engine keeps Metrics out of its code-path gates, so a
//     metrics-enabled batch must reproduce the metrics-disabled batch
//     byte-for-byte, across the engine representation axes
//     (ForceCSR × RoundWorkers).
//
//   - Determinism: the samples themselves carry no wall-clock-derived
//     values — two runs of the same seed emit identical series, and two
//     collectors fed those runs agree on every Snapshot field outside
//     the Timing sub-struct.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"anondyn"
	"anondyn/internal/metrics"
)

// parityFamily is the fixture scenario family: n=9 DAC under the
// seeded ER adversary with random inputs, on the representation the
// sub-test selects.
func parityFamily(forceCSR bool, roundWorkers int) func(int64) anondyn.Scenario {
	return func(seed int64) anondyn.Scenario {
		return anondyn.Scenario{
			N: 9, Eps: 1e-3,
			Algorithm:    anondyn.AlgoDAC,
			Inputs:       anondyn.RandomInputs(9, seed),
			Adversary:    anondyn.Probabilistic(0.5, seed),
			Seed:         seed,
			ForceCSR:     forceCSR,
			RoundWorkers: roundWorkers,
		}
	}
}

// parityRow is the serialized view of one run — every result field a
// metrics bug could plausibly perturb.
type parityRow struct {
	Seed      int64           `json:"seed"`
	Decided   bool            `json:"decided"`
	Rounds    int             `json:"rounds"`
	Outputs   map[int]float64 `json:"outputs"`
	Delivered int             `json:"delivered"`
	Lost      int             `json:"lost"`
}

// runParityBatch runs the family over the seeds and serializes the
// result stream. JSON map keys are emitted in sorted order, so equal
// results mean equal bytes.
func runParityBatch(t *testing.T, mk func(int64) anondyn.Scenario, sink anondyn.MetricsSink) []byte {
	t.Helper()
	var rows []parityRow
	collect := anondyn.SinkFunc(func(_ int, seed int64, res *anondyn.Result) error {
		rows = append(rows, parityRow{
			Seed: seed, Decided: res.Decided, Rounds: res.Rounds,
			Outputs:   res.Outputs,
			Delivered: res.MessagesDelivered, Lost: res.MessagesLost,
		})
		return nil
	})
	opts := anondyn.BatchOptions{Workers: 2, Metrics: sink}
	if err := anondyn.RunManyStream(anondyn.Seeds(8, 100), mk, collect, opts); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(rows)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestMetricsParityProperty: metrics-on and metrics-off batches are
// byte-identical on every representation combination.
func TestMetricsParityProperty(t *testing.T) {
	for _, forceCSR := range []bool{false, true} {
		for _, roundWorkers := range []int{0, 2} {
			name := fmt.Sprintf("csr=%v/roundworkers=%d", forceCSR, roundWorkers)
			t.Run(name, func(t *testing.T) {
				mk := parityFamily(forceCSR, roundWorkers)
				off := runParityBatch(t, mk, nil)
				on := runParityBatch(t, mk, anondyn.NewMetricsCollector())
				if !bytes.Equal(off, on) {
					t.Errorf("metrics-enabled rows differ from disabled rows:\noff %s\non  %s", off, on)
				}
			})
		}
	}
}

// seriesRun executes one sequential seeded run with a SeriesSink and a
// Collector teed together, returning the recorded series and the
// collector's snapshot.
func seriesRun(t *testing.T, seed int64) (*metrics.SeriesSink, metrics.Snapshot) {
	t.Helper()
	ss := &metrics.SeriesSink{}
	coll := metrics.NewCollector()
	mk := parityFamily(false, 0)
	opts := anondyn.BatchOptions{Workers: 1, Metrics: metrics.Tee(ss, coll)}
	err := anondyn.RunManyStream([]int64{seed, seed + 1}, mk,
		anondyn.SinkFunc(func(int, int64, *anondyn.Result) error { return nil }), opts)
	if err != nil {
		t.Fatal(err)
	}
	return ss, coll.Snapshot()
}

// TestMetricsSeriesDeterminism: two runs of the same seeds emit
// identical RoundSample and RunSample series, and their snapshots agree
// on everything outside the wall-clock Timing sub-struct.
func TestMetricsSeriesDeterminism(t *testing.T) {
	ss1, snap1 := seriesRun(t, 7)
	ss2, snap2 := seriesRun(t, 7)
	if len(ss1.RoundSamples) == 0 || len(ss1.RunSamples) != 2 {
		t.Fatalf("series empty: %d round samples, %d run samples",
			len(ss1.RoundSamples), len(ss1.RunSamples))
	}
	if !reflect.DeepEqual(ss1.RoundSamples, ss2.RoundSamples) {
		t.Error("round series differ across identical runs")
	}
	if !reflect.DeepEqual(ss1.RunSamples, ss2.RunSamples) {
		t.Error("run series differ across identical runs")
	}
	// Everything outside Timing is a deterministic function of the
	// execution; Timing is where wall clock is allowed to live.
	snap1.Timing, snap2.Timing = metrics.Timing{}, metrics.Timing{}
	if !reflect.DeepEqual(snap1, snap2) {
		t.Errorf("snapshots differ beyond Timing:\n%+v\n%+v", snap1, snap2)
	}
}
