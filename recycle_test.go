package anondyn_test

import (
	"fmt"
	"reflect"
	"testing"

	"anondyn"
)

// recycleFamily is a Monte-Carlo scenario family whose every randomized
// component is constructed from the run seed — the shape RunMany
// callers use — so a compiled run reseeded to `seed` must match a
// fresh Scenario built with `seed` bit for bit.
func recycleFamily(seed int64) anondyn.Scenario {
	return anondyn.Scenario{
		N: 9, F: 2, Eps: 1e-3,
		Algorithm: anondyn.AlgoDAC,
		Inputs:    anondyn.RandomInputs(9, seed),
		Adversary: anondyn.Probabilistic(0.5, seed),
		Crashes:   map[int]anondyn.Crash{1: anondyn.CrashAt(3)},
		Seed:      seed,
		MaxRounds: 5000,
	}
}

// byzFamily exercises the Byzantine path: a reseedable RandomNoise
// strategy plus DBAC processes (recycled in place under fixed ports).
func byzFamily(seed int64) anondyn.Scenario {
	return anondyn.Scenario{
		N: 11, F: 2, Eps: 1e-2,
		Algorithm: anondyn.AlgoDBAC,
		Inputs:    anondyn.RandomInputs(11, seed),
		Adversary: anondyn.Complete(),
		Byzantine: map[int]anondyn.Strategy{4: anondyn.RandomNoise(seed)},
		Seed:      seed,
		MaxRounds: 5000,
	}
}

func mustRun(t *testing.T, s anondyn.Scenario) *anondyn.Result {
	t.Helper()
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func assertEqualResults(t *testing.T, want, got *anondyn.Result, label string) {
	t.Helper()
	if !reflect.DeepEqual(want, got) {
		t.Errorf("%s: results differ:\nwant %+v\ngot  %+v", label, want, got)
	}
}

// TestCompiledRunMatchesFreshScenario: one CompiledScenario, reseeded
// and re-input per run, must reproduce fresh per-seed Scenario runs —
// the contract that makes engine and process recycling safe.
func TestCompiledRunMatchesFreshScenario(t *testing.T) {
	for name, family := range map[string]func(int64) anondyn.Scenario{
		"dac-er-crash":   recycleFamily,
		"dbac-byzantine": byzFamily,
	} {
		t.Run(name, func(t *testing.T) {
			cs, err := family(0).Compile()
			if err != nil {
				t.Fatal(err)
			}
			if !cs.Recycled() {
				t.Error("fixed-port DAC/DBAC scenario should recycle processes")
			}
			for seed := int64(0); seed < 20; seed++ {
				want := mustRun(t, family(seed))
				got, err := cs.Run(seed, family(seed).Inputs)
				if err != nil {
					t.Fatal(err)
				}
				assertEqualResults(t, want, got, fmt.Sprintf("seed %d", seed))
			}
			// Re-running an already-run seed must reproduce it: recycling
			// leaves no residue.
			want := mustRun(t, family(3))
			got, err := cs.Run(3, family(3).Inputs)
			if err != nil {
				t.Fatal(err)
			}
			assertEqualResults(t, want, got, "seed 3 revisited")
		})
	}
}

// TestCompiledRandomPortsMatchesFresh: RandomPorts forces per-run
// process construction; the compiled path must still match fresh runs.
func TestCompiledRandomPortsMatchesFresh(t *testing.T) {
	family := func(seed int64) anondyn.Scenario {
		s := recycleFamily(seed)
		s.RandomPorts = true
		return s
	}
	cs, err := family(0).Compile()
	if err != nil {
		t.Fatal(err)
	}
	if cs.Recycled() {
		t.Error("RandomPorts scenarios cannot recycle processes")
	}
	for seed := int64(0); seed < 8; seed++ {
		want := mustRun(t, family(seed))
		got, err := cs.Run(seed, family(seed).Inputs)
		if err != nil {
			t.Fatal(err)
		}
		assertEqualResults(t, want, got, fmt.Sprintf("seed %d", seed))
	}
}

// TestRunManyStreamRecycledMatchesSequential: the worker-pool batch —
// whose workers now recycle engines across seeds — must deliver exactly
// the results of a fresh sequential loop, for every worker count.
func TestRunManyStreamRecycledMatchesSequential(t *testing.T) {
	seeds := anondyn.Seeds(24, 100)
	var want []*anondyn.Result
	for _, seed := range seeds {
		want = append(want, mustRun(t, recycleFamily(seed)))
	}
	for _, workers := range []int{1, 3, 8} {
		sink := anondyn.NewRetainSink(len(seeds))
		err := anondyn.RunManyStream(seeds, recycleFamily, sink,
			anondyn.BatchOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		got := sink.MultiResult().Results
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		for i := range want {
			assertEqualResults(t, want[i], got[i], fmt.Sprintf("workers=%d seed %d", workers, seeds[i]))
		}
	}
}

// TestRunManyCompiledMatchesStream: the fully recycled batch (engine +
// processes once per worker) equals the per-seed-scenario batch across
// worker counts.
func TestRunManyCompiledMatchesStream(t *testing.T) {
	seeds := anondyn.Seeds(24, 7)
	inputs := func(seed int64) []float64 { return anondyn.RandomInputs(9, seed) }
	family := func() anondyn.Scenario { return recycleFamily(0) }

	want := anondyn.NewRetainSink(len(seeds))
	if err := anondyn.RunManyStream(seeds, recycleFamily, want,
		anondyn.BatchOptions{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		got := anondyn.NewRetainSink(len(seeds))
		err := anondyn.RunManyCompiled(family, seeds, inputs, got,
			anondyn.BatchOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for i, res := range got.MultiResult().Results {
			assertEqualResults(t, want.MultiResult().Results[i], res,
				fmt.Sprintf("workers=%d seed %d", workers, seeds[i]))
		}
	}
}

// TestCompiledRunValidatesInputs: the process-recycling path must
// reject exactly the inputs a fresh construction rejects — out-of-range
// values must not slip through Reinit.
func TestCompiledRunValidatesInputs(t *testing.T) {
	cs, err := recycleFamily(0).Compile()
	if err != nil {
		t.Fatal(err)
	}
	if !cs.Recycled() {
		t.Fatal("expected the recycling path")
	}
	bad := anondyn.SpreadInputs(9)
	bad[4] = 5 // outside [0, 1]
	if _, err := cs.Run(1, bad); err == nil {
		t.Error("compiled run accepted an out-of-range input a fresh run rejects")
	}
	// Wrong input count must also fail, not index out of range.
	if _, err := cs.Run(1, anondyn.SpreadInputs(4)); err == nil {
		t.Error("compiled run accepted a mis-sized input vector")
	}
	// And the scenario must remain usable after a rejected run.
	if _, err := cs.Run(1, anondyn.SpreadInputs(9)); err != nil {
		t.Errorf("compiled scenario unusable after rejected inputs: %v", err)
	}
}

// TestRunManyCompiledConfigError: template errors surface before any
// worker spins up.
func TestRunManyCompiledConfigError(t *testing.T) {
	bad := func() anondyn.Scenario { return anondyn.Scenario{N: 3} }
	err := anondyn.RunManyCompiled(bad, anondyn.Seeds(4, 0), nil, &anondyn.BatchStats{}, anondyn.BatchOptions{})
	if err == nil {
		t.Fatal("invalid template accepted")
	}
}

// TestRecycledWorkersRace drives the recycled batch paths with many
// workers so `go test -race ./...` (the CI configuration) patrols the
// per-worker engine and compiled-scenario state for sharing bugs.
func TestRecycledWorkersRace(t *testing.T) {
	seeds := anondyn.Seeds(32, 0)
	stats := &anondyn.BatchStats{Eps: 1e-3}
	if err := anondyn.RunManyStream(seeds, recycleFamily, stats,
		anondyn.BatchOptions{Workers: 8}); err != nil {
		t.Fatal(err)
	}
	if stats.Runs() != len(seeds) {
		t.Fatalf("streamed %d runs", stats.Runs())
	}
	compiled := &anondyn.BatchStats{Eps: 1e-3}
	err := anondyn.RunManyCompiled(
		func() anondyn.Scenario { return recycleFamily(0) },
		seeds,
		func(seed int64) []float64 { return anondyn.RandomInputs(9, seed) },
		compiled,
		anondyn.BatchOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if compiled.Runs() != len(seeds) {
		t.Fatalf("compiled batch streamed %d runs", compiled.Runs())
	}
}
