package anondyn_test

import (
	"testing"

	"anondyn"
)

func TestRunMany(t *testing.T) {
	mr, err := anondyn.RunMany(anondyn.Seeds(10, 100), func(seed int64) anondyn.Scenario {
		return anondyn.Scenario{
			N: 7, F: 3, Eps: 1e-3,
			Algorithm:   anondyn.AlgoDAC,
			Inputs:      anondyn.RandomInputs(7, seed),
			Adversary:   anondyn.Probabilistic(0.4, seed),
			RandomPorts: true,
			Seed:        seed,
			MaxRounds:   5000,
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mr.Results) != 10 || len(mr.Seeds) != 10 {
		t.Fatalf("results/seeds = %d/%d", len(mr.Results), len(mr.Seeds))
	}
	if !mr.DecidedAll() {
		t.Errorf("only %d/10 decided", mr.DecidedCount())
	}
	if v := mr.Violations(1e-3); v != 0 {
		t.Errorf("%d safety violations", v)
	}
	s := mr.Rounds()
	if s.N != 10 || s.Min < 1 || s.Max < s.Min {
		t.Errorf("rounds summary = %+v", s)
	}
}

func TestRunManyPropagatesErrors(t *testing.T) {
	_, err := anondyn.RunMany(anondyn.Seeds(3, 0), func(seed int64) anondyn.Scenario {
		return anondyn.Scenario{} // invalid
	})
	if err == nil {
		t.Error("invalid scenario accepted")
	}
}

func TestSeeds(t *testing.T) {
	s := anondyn.Seeds(3, 40)
	if len(s) != 3 || s[0] != 40 || s[2] != 42 {
		t.Errorf("Seeds = %v", s)
	}
}
