package anondyn

import (
	"fmt"

	"anondyn/internal/core"
	"anondyn/internal/fault"
	"anondyn/internal/network"
	"anondyn/internal/sim"
)

// reseeder matches adversary.Reseeder (and any Byzantine strategy with
// the same method): rewind a randomized component's stream to the state
// of a fresh instance built with the given seed.
type reseeder interface {
	Reseed(seed int64)
}

// CompiledScenario is a Scenario whose static structure — validation,
// port policy, process construction — has been resolved once so that
// many seeded runs can share it. Between runs it recycles the
// simulation engine and, when the algorithm supports in-place
// reinitialization (DAC, DBAC) and ports are not randomized, the
// process objects too: a thousand-seed batch builds processes and views
// once, not once per seed.
//
// Per-run semantics of Run(seed, inputs):
//
//   - the run seed replaces Scenario.Seed (delivery shuffling, random
//     ports);
//   - randomized adversaries and Byzantine strategies implementing
//     Reseed(seed) are rewound, making the run identical to a fresh
//     Scenario whose components were constructed with that seed;
//   - nil inputs mean the template's Inputs.
//
// A CompiledScenario is NOT safe for concurrent use — it owns one
// engine and one adversary. Batches give each worker its own (see
// RunManyCompiled). Stateful per-run collectors (Tracker, Series,
// Recorder) are shared across runs and accumulate; leave them unset for
// batches. Randomized adversaries without a Reseed method keep
// advancing their stream across runs: runs remain valid but are no
// longer reproducible per seed.
type CompiledScenario struct {
	s       Scenario
	ports   network.Ports // identity numberings, cached (non-RandomPorts)
	byz     map[int]fault.Strategy
	crashes fault.Schedule
	procs   []core.Process
	reinit  bool // every process supports core.Reinitializer
	box     engineBox
}

// Compile validates the scenario once and returns the reusable form.
func (s Scenario) Compile() (*CompiledScenario, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	c := &CompiledScenario{
		s:       s,
		byz:     s.byzStrategies(),
		crashes: s.crashSchedule(),
	}
	if !s.RandomPorts {
		c.ports = network.IdentityPorts(s.N)
		procs, err := s.buildProcs(c.ports, c.byz)
		if err != nil {
			return nil, err
		}
		c.procs = procs
		c.reinit = true
		for _, p := range procs {
			if p == nil {
				continue
			}
			if _, ok := p.(core.Reinitializer); !ok {
				c.reinit = false
				break
			}
		}
	} else if _, err := s.buildProcs(s.portsFor(s.Seed), c.byz); err != nil {
		// Surface construction errors at compile time even though the
		// per-run ports force per-run process construction.
		return nil, err
	}
	return c, nil
}

// Run executes one seeded instance of the compiled scenario and returns
// a detached Result (safe to retain across further runs).
func (c *CompiledScenario) Run(seed int64, inputs []float64) (*Result, error) {
	s := c.s
	if inputs != nil {
		if len(inputs) != s.N {
			return nil, fmt.Errorf("%w: %d inputs for n=%d", ErrScenario, len(inputs), s.N)
		}
		s.Inputs = inputs
	}
	s.Seed = seed

	if r, ok := s.Adversary.(reseeder); ok {
		r.Reseed(seed)
	}
	for _, strat := range c.byz {
		if r, ok := strat.(reseeder); ok {
			r.Reseed(seed)
		}
	}

	ports := c.ports
	procs := c.procs
	switch {
	case s.RandomPorts:
		// Self-ports change per seed, so processes must be rebuilt.
		ports = s.portsFor(seed)
		var err error
		procs, err = s.buildProcs(ports, c.byz)
		if err != nil {
			return nil, err
		}
	case c.reinit:
		for i, p := range procs {
			if p == nil {
				continue
			}
			// The constructors validate inputs; in-place recycling must
			// reject exactly what a fresh build would.
			if err := core.ValidateInput(s.Inputs[i]); err != nil {
				return nil, fmt.Errorf("node %d: %w", i, err)
			}
			p.(core.Reinitializer).Reinit(s.Inputs[i])
			if s.Tracker != nil {
				s.Tracker.SetInput(i, s.Inputs[i])
			}
		}
	default:
		var err error
		procs, err = s.buildProcs(ports, c.byz)
		if err != nil {
			return nil, err
		}
	}

	cfg := s.config(procs, ports, c.byz, c.crashes, seed)
	if s.Concurrent {
		if c.box.ceng == nil {
			eng, err := sim.NewConcurrentEngine(*cfg)
			if err != nil {
				return nil, err
			}
			c.box.ceng = eng
		} else if err := c.box.ceng.Reset(*cfg); err != nil {
			return nil, err
		}
		return c.box.ceng.Run(), nil
	}
	if c.box.eng == nil {
		eng, err := sim.NewEngine(*cfg)
		if err != nil {
			return nil, err
		}
		c.box.eng = eng
	} else if err := c.box.eng.Reset(*cfg); err != nil {
		return nil, err
	}
	return c.box.eng.Run(), nil
}

// Scenario returns the template the compiled scenario was built from.
func (c *CompiledScenario) Scenario() Scenario { return c.s }

// Recycled reports whether runs reuse the compiled process objects
// (in-place reinitialization) rather than rebuilding them per seed.
func (c *CompiledScenario) Recycled() bool { return c.reinit }
