package anondyn_test

import (
	"errors"
	"math"
	"testing"

	"anondyn"
)

func TestScenarioDACBasic(t *testing.T) {
	res, err := anondyn.Scenario{
		N: 7, F: 3, Eps: 1e-3,
		Algorithm: anondyn.AlgoDAC,
		Inputs:    anondyn.SpreadInputs(7),
		Adversary: anondyn.Complete(),
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Decided || !res.Valid() || !res.EpsAgreement(1e-3) {
		t.Errorf("decided=%v valid=%v range=%g", res.Decided, res.Valid(), res.OutputRange())
	}
	if res.Rounds != anondyn.PEndDAC(1e-3) {
		t.Errorf("rounds = %d, want %d", res.Rounds, anondyn.PEndDAC(1e-3))
	}
}

func TestScenarioValidation(t *testing.T) {
	base := func() anondyn.Scenario {
		return anondyn.Scenario{
			N: 7, F: 3, Eps: 1e-3,
			Algorithm: anondyn.AlgoDAC,
			Inputs:    anondyn.SpreadInputs(7),
			Adversary: anondyn.Complete(),
		}
	}
	cases := []struct {
		name   string
		mutate func(*anondyn.Scenario)
	}{
		{"zero n", func(s *anondyn.Scenario) { s.N = 0 }},
		{"inputs length", func(s *anondyn.Scenario) { s.Inputs = s.Inputs[:3] }},
		{"nil adversary", func(s *anondyn.Scenario) { s.Adversary = nil }},
		{"no algorithm", func(s *anondyn.Scenario) { s.Algorithm = 0 }},
		{"no eps or pEnd", func(s *anondyn.Scenario) { s.Eps = 0 }},
		{"resilience", func(s *anondyn.Scenario) { s.F = 4 }},
		{"bad input", func(s *anondyn.Scenario) { s.Inputs[0] = 2 }},
	}
	for _, tc := range cases {
		s := base()
		tc.mutate(&s)
		if _, err := s.Run(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// ErrScenario is matchable.
	s := base()
	s.Adversary = nil
	if _, err := s.Run(); !errors.Is(err, anondyn.ErrScenario) {
		t.Errorf("err = %v, want ErrScenario", err)
	}
}

func TestScenarioUncheckedAllowsOutOfBounds(t *testing.T) {
	s := anondyn.Scenario{
		N: 4, F: 2, Eps: 0.5, // n = 2f: invalid for DAC
		Algorithm: anondyn.AlgoDAC,
		Inputs:    anondyn.SpreadInputs(4),
		Adversary: anondyn.Complete(),
		MaxRounds: 10,
	}
	if _, err := s.Run(); err == nil {
		t.Fatal("out-of-bounds config accepted without Unchecked")
	}
	s.Unchecked = true
	if _, err := s.Run(); err != nil {
		t.Fatalf("Unchecked run rejected: %v", err)
	}
}

func TestScenarioDBACByzantine(t *testing.T) {
	byz := map[int]anondyn.Strategy{
		2: anondyn.Equivocator(0, 1),
		8: anondyn.Extremist(0),
	}
	res, err := anondyn.Scenario{
		N: 11, F: 2, Eps: 1e-2,
		Algorithm:    anondyn.AlgoDBAC,
		PEndOverride: 10,
		Inputs:       anondyn.SpreadInputs(11),
		Adversary:    anondyn.Complete(),
		Byzantine:    byz,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Decided || !res.Valid() {
		t.Errorf("decided=%v valid=%v", res.Decided, res.Valid())
	}
	if res.EpsAgreement(1e-2) != (res.OutputRange() <= 1e-2) {
		t.Error("EpsAgreement inconsistent with OutputRange")
	}
}

func TestScenarioConcurrentMatchesSequential(t *testing.T) {
	mk := func(concurrent bool) *anondyn.Result {
		res, err := anondyn.Scenario{
			N: 9, F: 4, Eps: 1e-3,
			Algorithm:  anondyn.AlgoDAC,
			Inputs:     anondyn.SpreadInputs(9),
			Adversary:  anondyn.Rotating(4),
			Crashes:    map[int]anondyn.Crash{1: anondyn.CrashAt(2)},
			Concurrent: concurrent,
		}.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq, conc := mk(false), mk(true)
	if seq.Rounds != conc.Rounds || seq.Decided != conc.Decided {
		t.Errorf("rounds/decided differ: seq %d/%v, conc %d/%v",
			seq.Rounds, seq.Decided, conc.Rounds, conc.Decided)
	}
	for node, v := range seq.Outputs {
		if cv, ok := conc.Outputs[node]; !ok || math.Abs(cv-v) > 0 {
			t.Errorf("node %d: seq %g, conc %v", node, v, conc.Outputs[node])
		}
	}
}

func TestScenarioRandomPortsStillCorrect(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		res, err := anondyn.Scenario{
			N: 7, F: 3, Eps: 1e-3,
			Algorithm:   anondyn.AlgoDAC,
			Inputs:      anondyn.RandomInputs(7, seed),
			Adversary:   anondyn.Rotating(3),
			RandomPorts: true,
			Seed:        seed,
		}.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Decided || !res.Valid() || !res.EpsAgreement(1e-3) {
			t.Errorf("seed %d: decided=%v valid=%v range=%g",
				seed, res.Decided, res.Valid(), res.OutputRange())
		}
	}
}

func TestScenarioShuffleDelivery(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		res, err := anondyn.Scenario{
			N: 9, F: 4, Eps: 1e-3,
			Algorithm:       anondyn.AlgoDAC,
			Inputs:          anondyn.SpreadInputs(9),
			Adversary:       anondyn.Rotating(4),
			ShuffleDelivery: true,
			Seed:            seed,
		}.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Decided || !res.Valid() || !res.EpsAgreement(1e-3) {
			t.Errorf("seed %d: decided=%v valid=%v range=%g",
				seed, res.Decided, res.Valid(), res.OutputRange())
		}
	}
}

func TestScenarioRecorderAndTrace(t *testing.T) {
	rec := anondyn.NewRecorder()
	res, err := anondyn.Scenario{
		N: 5, F: 2, Eps: 0.1,
		Algorithm: anondyn.AlgoDAC,
		Inputs:    anondyn.SpreadInputs(5),
		Adversary: anondyn.Complete(),
		Recorder:  rec,
		KeepTrace: true,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Error("recorder empty")
	}
	if len(res.Trace) != res.Rounds {
		t.Errorf("trace %d rounds, result %d", len(res.Trace), res.Rounds)
	}
	if got := anondyn.MaxDynaDegree(res.Trace, res.FaultFree, 1); got != 4 {
		t.Errorf("complete trace degree = %d, want 4", got)
	}
}

func TestScenarioAllAlgorithmsRun(t *testing.T) {
	for _, algo := range []anondyn.Algo{
		anondyn.AlgoDAC, anondyn.AlgoMegaRound, anondyn.AlgoFullInfo,
		anondyn.AlgoReliableIterated, anondyn.AlgoBACReliable,
	} {
		res, err := anondyn.Scenario{
			N: 7, F: 2, Eps: 1e-2,
			Algorithm: algo,
			MegaT:     2,
			Inputs:    anondyn.SpreadInputs(7),
			Adversary: anondyn.Complete(),
			MaxRounds: 200,
		}.Run()
		if err != nil {
			t.Errorf("%v: %v", algo, err)
			continue
		}
		if !res.Decided {
			t.Errorf("%v: undecided on the complete graph", algo)
		}
	}
	for _, algo := range []anondyn.Algo{anondyn.AlgoDBAC, anondyn.AlgoDBACPiggyback} {
		res, err := anondyn.Scenario{
			N: 6, F: 1, Eps: 1e-2,
			Algorithm:       algo,
			PiggybackWindow: 2,
			PEndOverride:    8,
			Inputs:          anondyn.SpreadInputs(6),
			Adversary:       anondyn.Complete(),
			MaxRounds:       200,
		}.Run()
		if err != nil {
			t.Errorf("%v: %v", algo, err)
			continue
		}
		if !res.Decided {
			t.Errorf("%v: undecided", algo)
		}
	}
}

func TestAlgoStrings(t *testing.T) {
	algos := []anondyn.Algo{
		anondyn.AlgoDAC, anondyn.AlgoDBAC, anondyn.AlgoDBACPiggyback,
		anondyn.AlgoMegaRound, anondyn.AlgoFullInfo,
		anondyn.AlgoReliableIterated, anondyn.AlgoBACReliable,
	}
	seen := map[string]bool{}
	for _, a := range algos {
		s := a.String()
		if s == "" || s == "unknown" || seen[s] {
			t.Errorf("Algo(%d).String() = %q", int(a), s)
		}
		seen[s] = true
	}
	if anondyn.Algo(99).String() != "unknown" {
		t.Error("unknown algo should say so")
	}
}

func TestInputHelpers(t *testing.T) {
	sp := anondyn.SpreadInputs(5)
	if sp[0] != 0 || sp[4] != 1 || sp[2] != 0.5 {
		t.Errorf("SpreadInputs = %v", sp)
	}
	if got := anondyn.SpreadInputs(1); got[0] != 0 {
		t.Errorf("SpreadInputs(1) = %v", got)
	}
	si := anondyn.SplitInputs(5, 2)
	if si[0] != 0 || si[1] != 0 || si[2] != 1 || si[4] != 1 {
		t.Errorf("SplitInputs = %v", si)
	}
	ri := anondyn.RandomInputs(10, 3)
	for _, v := range ri {
		if v < 0 || v > 1 {
			t.Errorf("RandomInputs value %g outside [0,1]", v)
		}
	}
	ri2 := anondyn.RandomInputs(10, 3)
	for i := range ri {
		if ri[i] != ri2[i] {
			t.Error("RandomInputs not deterministic per seed")
		}
	}
}

func TestThresholdReexports(t *testing.T) {
	if anondyn.CrashDegree(9) != 4 || anondyn.ByzDegree(11, 2) != 8 {
		t.Error("degree re-exports broken")
	}
	if anondyn.PEndDAC(0.25) != 2 {
		t.Error("PEndDAC re-export broken")
	}
	if anondyn.PEndDBAC(0.5, 6) < 1 {
		t.Error("PEndDBAC re-export broken")
	}
}
