package anondyn_test

import (
	"math/rand"
	"testing"

	"anondyn"
)

// TestSoakRandomScenarios is the failure-injection sweep: several
// hundred randomly composed scenarios (algorithm, size, adversary,
// crash/Byzantine pattern, ports) within the paper's conditions, every
// one of which must decide, stay valid, and ε-agree. Shrunk under
// -short.
func TestSoakRandomScenarios(t *testing.T) {
	iterations := 300
	if testing.Short() {
		iterations = 40
	}
	rng := rand.New(rand.NewSource(20260612))
	for i := 0; i < iterations; i++ {
		seed := rng.Int63()
		if i%2 == 0 {
			soakDAC(t, i, seed)
		} else {
			soakDBAC(t, i, seed)
		}
	}
}

func soakDAC(t *testing.T, iter int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := rng.Intn(9)*2 + 5 // odd 5..21
	f := (n - 1) / 2
	eps := []float64{1e-2, 1e-3, 1e-4}[rng.Intn(3)]

	var adv anondyn.Adversary
	switch rng.Intn(5) {
	case 0:
		adv = anondyn.Complete()
	case 1:
		adv = anondyn.Rotating(anondyn.CrashDegree(n) + rng.Intn(n/2))
	case 2:
		adv = anondyn.RandomDegree(rng.Intn(3)+1, anondyn.CrashDegree(n), rng.Float64()*0.2, seed)
	case 3:
		adv = anondyn.Clustered(rng.Intn(5) + 1)
	default:
		adv = anondyn.Probabilistic(0.3+rng.Float64()*0.7, seed)
	}

	crashes := make(map[int]anondyn.Crash)
	perm := rng.Perm(n)
	for j := 0; j < rng.Intn(f+1); j++ {
		node := perm[j]
		round := rng.Intn(15)
		switch rng.Intn(3) {
		case 0:
			crashes[node] = anondyn.CrashAt(round)
		case 1:
			crashes[node] = anondyn.CrashSilent(round)
		default:
			var subset []int
			for v := 0; v < n; v++ {
				if v != node && rng.Intn(2) == 0 {
					subset = append(subset, v)
				}
			}
			crashes[node] = anondyn.CrashPartial(round, subset...)
		}
	}

	res, err := anondyn.Scenario{
		N: n, F: f, Eps: eps,
		Algorithm:   anondyn.AlgoDAC,
		Inputs:      anondyn.RandomInputs(n, seed),
		Adversary:   adv,
		Crashes:     crashes,
		RandomPorts: rng.Intn(2) == 0,
		Seed:        seed,
		Concurrent:  iter%10 == 0, // sprinkle the concurrent engine in
		MaxRounds:   60000,
	}.Run()
	if err != nil {
		t.Fatalf("iter %d (seed %d): %v", iter, seed, err)
	}
	checkSoak(t, iter, seed, "DAC", res, eps)
}

func soakDBAC(t *testing.T, iter int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	nfs := []struct{ n, f int }{{6, 1}, {11, 2}, {16, 3}, {21, 4}}
	nf := nfs[rng.Intn(len(nfs))]
	n, f := nf.n, nf.f
	eps := 1e-2

	var adv anondyn.Adversary
	if rng.Intn(2) == 0 {
		adv = anondyn.Complete()
	} else {
		adv = anondyn.Rotating(anondyn.ByzDegree(n, f))
	}

	byz := make(map[int]anondyn.Strategy)
	perm := rng.Perm(n)
	nByz := rng.Intn(f + 1)
	for j := 0; j < nByz; j++ {
		node := perm[j]
		switch rng.Intn(5) {
		case 0:
			byz[node] = anondyn.Silent()
		case 1:
			byz[node] = anondyn.Extremist(float64(rng.Intn(2)))
		case 2:
			byz[node] = anondyn.Equivocator(0, 1)
		case 3:
			byz[node] = anondyn.RandomNoise(seed + int64(node))
		default:
			byz[node] = anondyn.Laggard(rng.Float64())
		}
	}
	// Spend the rest of the budget on crashes (hybrid faults).
	crashes := make(map[int]anondyn.Crash)
	for j := nByz; j < f; j++ {
		crashes[perm[j]] = anondyn.CrashAt(rng.Intn(10))
	}

	res, err := anondyn.Scenario{
		N: n, F: f, Eps: eps,
		Algorithm:    anondyn.AlgoDBAC,
		PEndOverride: 14,
		Inputs:       anondyn.RandomInputs(n, seed),
		Adversary:    adv,
		Byzantine:    byz,
		Crashes:      crashes,
		RandomPorts:  rng.Intn(2) == 0,
		Seed:         seed,
		MaxRounds:    20000,
	}.Run()
	if err != nil {
		t.Fatalf("iter %d (seed %d): %v", iter, seed, err)
	}
	checkSoak(t, iter, seed, "DBAC", res, eps)
}

func checkSoak(t *testing.T, iter int, seed int64, algo string, res *anondyn.Result, eps float64) {
	t.Helper()
	if !res.Decided {
		t.Errorf("iter %d (%s, seed %d): undecided after %d rounds", iter, algo, seed, res.Rounds)
		return
	}
	if !res.Valid() {
		t.Errorf("iter %d (%s, seed %d): validity violated: %v", iter, algo, seed, res.Outputs)
	}
	if !res.EpsAgreement(eps) {
		t.Errorf("iter %d (%s, seed %d): range %g > ε=%g", iter, algo, seed, res.OutputRange(), eps)
	}
}
