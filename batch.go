package anondyn

import (
	"fmt"

	"anondyn/internal/analysis"
	"anondyn/internal/harness"
	"anondyn/internal/metrics"
)

// ResultSink consumes the results of a seeded batch as they complete.
// RunManyStream delivers results in batch order (index 0, 1, 2, …)
// from a single goroutine regardless of worker count, so sinks need no
// locking and every aggregate they build is deterministic. Returning
// an error aborts further deliveries and fails the batch.
type ResultSink interface {
	Consume(index int, seed int64, res *Result) error
}

// BatchOptions tunes the worker pool behind a batch.
type BatchOptions struct {
	// Workers is the pool size; values < 1 mean GOMAXPROCS.
	Workers int
	// Retries re-executes a failing scenario up to this many extra
	// times before recording its error (0 = a single attempt).
	Retries int
	// OnProgress, when non-nil, is called after each delivery with the
	// number of completed runs and the batch size, from one goroutine.
	OnProgress func(done, total int)
	// MaxPending caps the reorder window: at most this many runs may be
	// dispatched ahead of the next result the sink is waiting for, so
	// skewed per-run costs cannot grow collector memory with the batch
	// size. 0 = unbounded; values below the worker count are raised to
	// it.
	MaxPending int
	// Metrics, when non-nil, watches the whole batch live: it is
	// attached to every run's engine (unless the scenario sets its own
	// sink), receives one RunSample per completed run in batch order,
	// and — when it also implements the pool-observer methods, as
	// MetricsCollector does — tracks pool size and worker utilization.
	// Purely observational: results are bit-identical with or without
	// it.
	Metrics MetricsSink
}

// harness converts the options to the harness layer's form.
func (o BatchOptions) harness() harness.Options {
	h := harness.Options{
		Workers:    o.Workers,
		Retries:    o.Retries,
		OnProgress: o.OnProgress,
		MaxPending: o.MaxPending,
	}
	if po, ok := o.Metrics.(harness.PoolObserver); ok {
		h.Observer = po
	}
	return h
}

// runDone emits one RunSample for a completed run, in batch order.
func (o BatchOptions) runDone(res *Result) {
	if o.Metrics == nil {
		return
	}
	o.Metrics.RunDone(metrics.RunSample{
		Decided:   res.Decided,
		Rounds:    res.Rounds,
		Delivered: res.MessagesDelivered,
		Lost:      res.MessagesLost,
	})
}

// RunManyStream executes the scenario produced by mk(seed) for each
// seed across a worker pool and streams every result into sink —
// nothing is retained once a sink call returns, so memory stays
// bounded by the in-flight window rather than the batch size. mk must
// return a fresh Scenario per call (adversaries and strategies hold
// RNG state) and is invoked concurrently for distinct seeds. Results
// are bit-identical across worker counts.
//
// Each worker recycles one simulation engine across every seed it
// executes (the engine's dense state and scratch are rebuilt-free; only
// the per-seed processes and adversary are fresh). A Reset engine is
// indistinguishable from a fresh one, so recycling never changes
// results — asserted by the recycle tests. Scenarios that only need
// aggregate numbers and want the processes recycled too should use
// RunManyCompiled.
func RunManyStream(seeds []int64, mk func(seed int64) Scenario, sink ResultSink, opts BatchOptions) error {
	return harness.RunPooled(len(seeds),
		func() (*engineBox, error) { return &engineBox{}, nil },
		func(box *engineBox, i int) (*Result, error) {
			s := mk(seeds[i])
			if s.Metrics == nil {
				s.Metrics = opts.Metrics
			}
			res, err := s.runOn(box)
			if err != nil {
				return nil, fmt.Errorf("anondyn: seed %d: %w", seeds[i], err)
			}
			return res, nil
		},
		func(i int, res *Result) error {
			if err := sink.Consume(i, seeds[i], res); err != nil {
				return err
			}
			opts.runDone(res)
			return nil
		},
		opts.harness())
}

// RunManyCompiled executes one scenario family across seeds with fully
// recycled per-worker state: every worker calls family() once, compiles
// it, and then reuses the compiled scenario — engine, scratch, and
// (for DAC/DBAC under fixed ports) the process objects themselves —
// for every seed it draws. inputs(seed), when non-nil, supplies each
// run's input vector; nil means the template's Inputs for every run.
//
// family must build a fresh template per call (workers must not share
// adversary RNG state). For per-seed reproducibility regardless of
// which worker runs a seed, the template's randomized components must
// implement Reseed(seed) — true of every randomized adversary and
// strategy in this package — or be deterministic; the compiled run then
// matches a fresh Scenario built with that seed exactly, and results
// are bit-identical across worker counts. Results stream to sink in
// batch order, as with RunManyStream.
func RunManyCompiled(family func() Scenario, seeds []int64, inputs func(seed int64) []float64, sink ResultSink, opts BatchOptions) error {
	if _, err := family().Compile(); err != nil {
		return fmt.Errorf("anondyn: compile: %w", err)
	}
	return harness.RunPooled(len(seeds),
		func() (*CompiledScenario, error) {
			tpl := family()
			if tpl.Metrics == nil {
				tpl.Metrics = opts.Metrics
			}
			return tpl.Compile()
		},
		func(cs *CompiledScenario, i int) (*Result, error) {
			var in []float64
			if inputs != nil {
				in = inputs(seeds[i])
			}
			res, err := cs.Run(seeds[i], in)
			if err != nil {
				return nil, fmt.Errorf("anondyn: seed %d: %w", seeds[i], err)
			}
			return res, nil
		},
		func(i int, res *Result) error {
			if err := sink.Consume(i, seeds[i], res); err != nil {
				return err
			}
			opts.runDone(res)
			return nil
		},
		opts.harness())
}

// RetainSink is the opt-in retention policy: it keeps every Result and
// reassembles the MultiResult that RunMany returns. Use it only when
// the batch is small enough to hold in memory; aggregate with
// BatchStats otherwise.
type RetainSink struct {
	mr MultiResult
}

// NewRetainSink returns a sink pre-sized for a batch of n runs.
func NewRetainSink(n int) *RetainSink {
	return &RetainSink{mr: MultiResult{
		Results: make([]*Result, 0, n),
		Seeds:   make([]int64, 0, n),
	}}
}

// Consume implements ResultSink.
func (s *RetainSink) Consume(_ int, seed int64, res *Result) error {
	s.mr.Results = append(s.mr.Results, res)
	s.mr.Seeds = append(s.mr.Seeds, seed)
	return nil
}

// MultiResult returns the retained batch.
func (s *RetainSink) MultiResult() *MultiResult { return &s.mr }

// BatchStats is the streaming aggregation sink: it folds each result
// into counters and analysis accumulators — decided count, safety
// violations, rounds/output-range/bandwidth summaries — and retains
// nothing else, so a million-run batch costs a few float64s per run.
type BatchStats struct {
	// Eps is the ε used for the agreement half of the violation check;
	// leave 0 to count only validity violations.
	Eps float64

	runs, decided, violations int
	rounds, outRange, bytes   analysis.Accumulator
}

// Consume implements ResultSink.
func (b *BatchStats) Consume(_ int, _ int64, res *Result) error {
	return b.ConsumeRecord(Record(res, b.Eps))
}

// ConsumeRecord folds one pre-compressed run record — the distributed
// form of Consume. Feeding records in the same order as their Results
// produces a bit-identical aggregate (the float operations are the
// same), which is what lets a sharded sweep merge to the exact rows of
// a local run.
func (b *BatchStats) ConsumeRecord(rec RunRecord) error {
	b.runs++
	b.bytes.Add(float64(rec.Bytes))
	if !rec.Decided {
		return nil
	}
	b.decided++
	b.rounds.Add(float64(rec.Rounds))
	b.outRange.Add(rec.OutRange)
	if rec.Violation {
		b.violations++
	}
	return nil
}

// RunRecord is one run compressed to exactly the fields a BatchStats
// fold consumes — the unit a remote sweep worker ships back per seed.
type RunRecord struct {
	// Decided reports whether every fault-free node decided.
	Decided bool
	// Rounds is the executed round count.
	Rounds int
	// Bytes is Result.BytesDelivered.
	Bytes int
	// OutRange is the fault-free output range; meaningful only when
	// Decided.
	OutRange float64
	// Violation reports a validity or ε-agreement break, evaluated
	// against the ε the record was built with.
	Violation bool
}

// Record compresses one Result against eps (the cell's ε; 0 counts
// only validity violations).
func Record(res *Result, eps float64) RunRecord {
	rec := RunRecord{Decided: res.Decided, Rounds: res.Rounds, Bytes: res.BytesDelivered}
	if res.Decided {
		rec.OutRange = res.OutputRange()
		rec.Violation = !res.Valid() || (eps > 0 && !res.EpsAgreement(eps))
	}
	return rec
}

// Runs returns how many results have been consumed.
func (b *BatchStats) Runs() int { return b.runs }

// Decided returns how many consumed runs decided.
func (b *BatchStats) Decided() int { return b.decided }

// DecidedAll reports whether every consumed run decided.
func (b *BatchStats) DecidedAll() bool { return b.decided == b.runs }

// Violations returns how many decided runs broke validity or
// ε-agreement.
func (b *BatchStats) Violations() int { return b.violations }

// Rounds summarizes the round counts of the decided runs.
func (b *BatchStats) Rounds() Summary { return b.rounds.Summary() }

// OutputRange summarizes the output ranges of the decided runs.
func (b *BatchStats) OutputRange() Summary { return b.outRange.Summary() }

// Bytes summarizes delivered wire bytes per run (all zeros unless the
// scenarios set AccountBandwidth).
func (b *BatchStats) Bytes() Summary { return b.bytes.Summary() }

// Report snapshots the aggregates as a JSON-marshalable record — the
// batch half of the CLI sweep reports.
func (b *BatchStats) Report() BatchReport {
	return BatchReport{
		Runs:        b.runs,
		Decided:     b.decided,
		Violations:  b.violations,
		Rounds:      b.Rounds(),
		OutputRange: b.OutputRange(),
		Bytes:       b.Bytes(),
	}
}

// BatchReport is the serialized form of a BatchStats aggregate.
type BatchReport struct {
	Runs        int     `json:"runs"`
	Decided     int     `json:"decided"`
	Violations  int     `json:"violations"`
	Rounds      Summary `json:"rounds"`
	OutputRange Summary `json:"output_range"`
	Bytes       Summary `json:"bytes_delivered"`
}

// SinkFunc adapts a plain function to the ResultSink interface.
type SinkFunc func(index int, seed int64, res *Result) error

// Consume implements ResultSink.
func (f SinkFunc) Consume(index int, seed int64, res *Result) error {
	return f(index, seed, res)
}

// Sinks fans one result stream out to several sinks in order — e.g. a
// BatchStats aggregate plus a per-run logger. The first sink error
// aborts the fan-out.
func Sinks(sinks ...ResultSink) ResultSink { return multiSink(sinks) }

type multiSink []ResultSink

func (m multiSink) Consume(index int, seed int64, res *Result) error {
	for _, s := range m {
		if err := s.Consume(index, seed, res); err != nil {
			return err
		}
	}
	return nil
}
