// Command dynagrid coordinates a distributed sweep: it slices a
// committed scenario file into shards — (spec, cell range, seed range)
// units — dispatches them to dynabench -serve workers over the shard
// protocol, requeues shards when a worker is lost, and merges the
// per-run records back in global run order. The merged rows are
// byte-identical to a single-process run of the same spec and seeds
// (dynabench -spec), regardless of worker count, shard count, or
// mid-sweep worker failures.
//
// Usage:
//
//	dynabench -serve 127.0.0.1:7101 &    # on each worker machine
//	dynabench -serve 127.0.0.1:7102 &
//	dynagrid -spec examples/specs/e3-resilience-boundary.yaml \
//	         -workers 127.0.0.1:7101,127.0.0.1:7102 -seeds 200 -report csv
//	dynagrid -spec-dir examples/specs -workers 127.0.0.1:7101 -seeds 1
//
// -spec-dir is the batch mode mirroring dynabench -spec-dir: every
// scenario file in the directory runs through the coordinator in name
// order, against the same set of worker processes (dynabench -serve
// workers stay up across sweeps, so one worker fleet serves the whole
// directory).
//
// -report csv / -report json / -report html stream the rows to stdout
// in that format; a path writes a file (.csv for CSV, .html for a
// self-contained HTML report, anything else JSON with the same envelope
// as dynabench -report, so the two are directly diffable). With
// -spec-dir a file target fans out to one derived file per spec.
// -metrics streams live aggregate telemetry — including the workers'
// per-shard progress frames — as NDJSON to a file or TCP address.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"anondyn/internal/metrics"
	"anondyn/internal/report"
	"anondyn/internal/shard"
	"anondyn/internal/spec"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dynagrid:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dynagrid", flag.ContinueOnError)
	var (
		specFile   = fs.String("spec", "", "YAML/JSON scenario file to shard (this or -spec-dir is required)")
		specDir    = fs.String("spec-dir", "", "run every scenario file (*.yaml, *.yml, *.json) in this directory over one worker fleet")
		workers    = fs.String("workers", "", "comma-separated worker addresses (dynabench -serve endpoints; required)")
		shardsN    = fs.Int("shards", 0, "target shard count (0 = 2 per worker)")
		seedsN     = fs.Int("seeds", 0, "override the spec's seeds_per_cell (0 = use the file's)")
		maxPending = fs.Int("maxpending", 0, "per-shard reorder window on the workers (0 = unbounded)")
		timeout    = fs.Duration("timeout", shard.DefaultIOTimeout, "per-frame I/O bound (for a record stream: the gap between records)")
		reportOut  = fs.String("report", "", `"csv"/"json"/"html" for stdout, or a path (.csv/.html → that format, else JSON); with -spec-dir, one file per spec`)
		metricsOut = fs.String("metrics", "", "stream live metrics snapshots (incl. per-shard worker telemetry) as NDJSON to this file or host:port address")
		quiet      = fs.Bool("quiet", false, "suppress the banner and dispatch summary")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *specFile == "" && *specDir == "" {
		return fmt.Errorf("-spec or -spec-dir is required")
	}
	if *specFile != "" && *specDir != "" {
		return fmt.Errorf("-spec and -spec-dir are mutually exclusive")
	}
	addrs := splitAddrs(*workers)
	if len(addrs) == 0 {
		return fmt.Errorf("-workers is required (comma-separated dynabench -serve addresses)")
	}
	opts := shard.Options{
		Workers:      addrs,
		Shards:       *shardsN,
		SeedsPerCell: *seedsN,
		MaxPending:   *maxPending,
		IOTimeout:    *timeout,
		Log:          func(string, ...any) {},
	}
	if !*quiet {
		opts.Log = func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) }
	}
	coll, closeMetrics, err := metrics.Start(*metricsOut, 0)
	if err != nil {
		return err
	}
	defer closeMetrics() //nolint:errcheck // final snapshot write; fate shared with stdout
	opts.Metrics = coll

	target := report.ParseTarget(*reportOut)
	if *specDir != "" {
		return runSpecDir(*specDir, opts, target, *quiet)
	}
	return runSpecFile(*specFile, opts, target, *quiet)
}

// runSpecFile shards one scenario file across the workers and reports.
func runSpecFile(path string, opts shard.Options, target report.Target, quiet bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	res, err := shard.Run(data, opts)
	if err != nil {
		return err
	}
	doc := envelope(res, path, len(opts.Workers))
	if target.Format == report.FormatHTML {
		// The charts come from a local sequential pass: one extra run per
		// cell, next to nothing beside the distributed Monte-Carlo.
		_, grid, err := spec.Compile(data, opts.SeedsPerCell)
		if err != nil {
			return err
		}
		if doc.Series, err = grid.SeriesPerCell(); err != nil {
			return err
		}
	}

	if target.Stdout() {
		// Stdout report modes replace the human table so the output
		// stays machine-readable.
		return target.Write(doc)
	}

	if !quiet && res.Sweep.Description != "" {
		fmt.Printf("# %s\n", res.Sweep.Description)
	}
	if err := spec.Table(title(res, path), res.Rows).Fprint(os.Stdout); err != nil {
		return err
	}
	if !quiet {
		fmt.Printf("(%d shards over %d workers, %d requeued)\n", len(res.Shards), len(opts.Workers), res.Requeues)
		for _, addr := range opts.Workers {
			fmt.Printf("  %s: %d runs\n", addr, res.RunsByWorker[addr])
		}
	}
	if err := target.Write(doc); err != nil {
		return err
	}
	if target.Enabled() && !quiet {
		fmt.Printf("(report written to %s)\n", target.Path)
	}
	return nil
}

// runSpecDir shards every scenario file in the directory, in name
// order, over the same worker fleet — the distributed mirror of
// dynabench -spec-dir. The workers are dynabench -serve processes that
// outlive individual sweeps, so the whole directory runs without
// restarting anything.
func runSpecDir(dir string, opts shard.Options, target report.Target, quiet bool) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var files []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		switch filepath.Ext(e.Name()) {
		case ".yaml", ".yml", ".json":
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return fmt.Errorf("%s: no scenario files (*.yaml, *.yml, *.json)", dir)
	}
	sort.Strings(files)
	for i, path := range files {
		if i > 0 {
			fmt.Println()
		}
		if err := runSpecFile(path, opts, target.ForSpec(path), quiet); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	return nil
}

func title(res *shard.Result, path string) string {
	return res.Sweep.RunTitle(path, len(res.Rows))
}

// envelope builds the shared report.Sweep document. The cells array is
// the determinism contract — byte-identical to the local run's — while
// the envelope records run metadata ("workers" here counts worker
// processes; dynabench records its pool size), so parity checks compare
// .cells, as the CI distributed-smoke job does.
func envelope(res *shard.Result, path string, workers int) *report.Sweep {
	per := res.Sweep.SeedsPerCell
	if per < 1 {
		per = 1
	}
	return &report.Sweep{
		Spec:         res.Sweep.Name,
		SeedsPerCell: per,
		BaseSeed:     res.Sweep.BaseSeed,
		Workers:      workers,
		Cells:        res.Rows,
		Title:        title(res, path),
	}
}

func splitAddrs(list string) []string {
	var addrs []string
	for _, a := range strings.Split(list, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	return addrs
}
