// Command dynagrid runs distributed sweeps: it slices committed
// scenario files into shards — (spec, cell range, seed range) units —
// dispatches them to dynabench workers over the shard protocol,
// requeues shards when a worker is lost, and merges the per-run
// records back in global run order as they arrive. The merged rows are
// byte-identical to a single-process run of the same spec and seeds
// (dynabench -spec), regardless of worker count, shard count, or
// mid-sweep worker churn.
//
// One-shot mode (a fixed fleet, run to completion, exit):
//
//	dynabench -serve 127.0.0.1:7101 &    # on each worker machine
//	dynabench -serve 127.0.0.1:7102 &
//	dynagrid -spec examples/specs/e3-resilience-boundary.yaml \
//	         -workers 127.0.0.1:7101,127.0.0.1:7102 -seeds 200 -report csv
//	dynagrid -spec-dir examples/specs -workers 127.0.0.1:7101 -seeds 1
//
// -spec-dir submits every scenario file in the directory to one
// in-process control plane, so the sweeps run concurrently over the
// shared fleet under fair round-robin scheduling; results print in
// name order either way.
//
// Service mode (a resident control plane; workers and sweeps come and
// go):
//
//	dynagrid -serve-coordinator :7200 -token s3cret &
//	dynabench -join 127.0.0.1:7200 -token s3cret &   # elastic workers
//	dynagrid -submit 127.0.0.1:7200 -token s3cret \
//	         -spec examples/specs/e3-resilience-boundary.yaml -report out.json
//
// -serve-coordinator listens for dynabench -join workers and dynagrid
// -submit clients on one port; SIGINT/SIGTERM drains gracefully
// (queued sweeps finish, then exit; interrupt again to force). -submit
// enqueues one sweep, streams live status lines to stderr, and renders
// the finished rows exactly like a one-shot run. -status asks a
// resident control plane for its worker census and queued/running
// sweeps, prints them, and exits:
//
//	dynagrid -status 127.0.0.1:7200 -token s3cret
//
// -report csv / -report json / -report html stream the rows to stdout
// in that format; a path writes a file (.csv for CSV, .html for a
// self-contained HTML report, anything else JSON with the same envelope
// as dynabench -report, so the two are directly diffable). CSV targets
// fill row by row as cells commit. With -spec-dir a file target fans
// out to one derived file per spec, and an HTML target additionally
// writes a combined index page (linking the per-spec reports) at the
// flag's own path. -metrics streams live aggregate telemetry —
// including the workers' per-shard progress frames — as NDJSON to a
// file or TCP address.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"anondyn"
	"anondyn/internal/metrics"
	"anondyn/internal/report"
	"anondyn/internal/shard"
	"anondyn/internal/spec"
	"anondyn/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dynagrid:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dynagrid", flag.ContinueOnError)
	var (
		specFile   = fs.String("spec", "", "YAML/JSON scenario file to shard (this or -spec-dir is required)")
		specDir    = fs.String("spec-dir", "", "submit every scenario file (*.yaml, *.yml, *.json) in this directory concurrently over one worker fleet")
		workers    = fs.String("workers", "", "comma-separated worker addresses (dynabench -serve endpoints; required for one-shot runs, optional seed fleet with -serve-coordinator)")
		shardsN    = fs.Int("shards", 0, "target shard count per sweep (0 = sized from the fleet)")
		seedsN     = fs.Int("seeds", 0, "override the spec's seeds_per_cell (0 = use the file's)")
		maxPending = fs.Int("maxpending", 0, "per-shard reorder window on the workers (0 = unbounded)")
		timeout    = fs.Duration("timeout", shard.DefaultIOTimeout, "per-frame I/O bound (for a record stream: the gap between records)")
		reportOut  = fs.String("report", "", `"csv"/"json"/"html" for stdout, or a path (.csv/.html → that format, else JSON); with -spec-dir, one file per spec plus an HTML index`)
		metricsOut = fs.String("metrics", "", "stream live metrics snapshots (incl. per-shard worker telemetry) as NDJSON to this file or host:port address")
		quiet      = fs.Bool("quiet", false, "suppress the banner, dispatch summary, and status lines")
		serveCoord = fs.String("serve-coordinator", "", "run a resident control plane on this address: workers join (dynabench -join), sweeps arrive via -submit")
		submitAddr = fs.String("submit", "", "submit -spec to the control plane at this address and wait for the merged rows")
		statusAddr = fs.String("status", "", "query the control plane at this address and list queued/running sweeps")
		token      = fs.String("token", "", "shared secret for the shard handshake (all parties must agree; empty disables auth)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	coll, closeMetrics, err := metrics.Start(*metricsOut, 0)
	if err != nil {
		return err
	}
	defer closeMetrics() //nolint:errcheck // final snapshot write; fate shared with stdout
	addrs := splitAddrs(*workers)

	if *statusAddr != "" {
		if *specFile != "" || *specDir != "" || *submitAddr != "" || *serveCoord != "" {
			return fmt.Errorf("-status is a read-only query; it takes no sweep or service flags")
		}
		return runStatus(*statusAddr, *token, *timeout)
	}
	if *serveCoord != "" {
		if *specFile != "" || *specDir != "" || *submitAddr != "" {
			return fmt.Errorf("-serve-coordinator is a service mode; sweeps arrive via dynagrid -submit (or workers via dynabench -join)")
		}
		return serveCoordinator(*serveCoord, addrs, shard.PlaneOptions{
			Token:      *token,
			IOTimeout:  *timeout,
			MaxPending: *maxPending,
			Metrics:    coll,
		}, *quiet)
	}
	if *submitAddr != "" {
		if *specFile == "" {
			return fmt.Errorf("-submit needs -spec (the scenario file to enqueue)")
		}
		if *specDir != "" || len(addrs) > 0 {
			return fmt.Errorf("-submit sends one -spec to a control plane; -spec-dir and -workers are one-shot flags")
		}
		return runSubmit(*submitAddr, *specFile, *seedsN, *shardsN, *token, *timeout,
			report.ParseTarget(*reportOut), *quiet)
	}

	if *specFile == "" && *specDir == "" {
		return fmt.Errorf("-spec or -spec-dir is required")
	}
	if *specFile != "" && *specDir != "" {
		return fmt.Errorf("-spec and -spec-dir are mutually exclusive")
	}
	if len(addrs) == 0 {
		return fmt.Errorf("-workers is required (comma-separated dynabench -serve addresses)")
	}
	opts := shard.Options{
		Workers:      addrs,
		Shards:       *shardsN,
		SeedsPerCell: *seedsN,
		MaxPending:   *maxPending,
		Token:        *token,
		IOTimeout:    *timeout,
		Log:          func(string, ...any) {},
	}
	if !*quiet {
		opts.Log = func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) }
	}
	opts.Metrics = coll

	target := report.ParseTarget(*reportOut)
	if *specDir != "" {
		return runSpecDir(*specDir, opts, target, *quiet)
	}
	return runSpecFile(*specFile, opts, target, *quiet)
}

// runStatus asks a resident control plane for its live census and
// active sweep list, and prints one line per sweep.
func runStatus(addr, token string, timeout time.Duration) error {
	st, err := transport.QueryPlaneStatus(addr, token, timeout)
	if err != nil {
		return err
	}
	fmt.Printf("control plane %s: %d workers, %d active sweeps\n", addr, st.Workers, len(st.Sweeps))
	for _, sw := range st.Sweeps {
		name := sw.Name
		if name == "" {
			name = "(unnamed)"
		}
		fmt.Printf("  sweep %d  %-8s %6d/%d runs  %d requeues  %s\n",
			sw.ID, sw.State, sw.Done, sw.Total, sw.Requeues, name)
	}
	return nil
}

// serveCoordinator runs the resident control plane until a signal,
// then drains: queued sweeps finish, members get stop frames, exit. A
// second interrupt forces an immediate close.
func serveCoordinator(addr string, seedWorkers []string, popts shard.PlaneOptions, quiet bool) error {
	popts.Addr = addr
	if !quiet {
		popts.Log = func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) }
	}
	cp, err := shard.NewControlPlane(popts)
	if err != nil {
		return err
	}
	for _, a := range seedWorkers {
		cp.AddWorker(a)
	}
	fmt.Printf("control plane listening on %s\n", cp.Addr())
	errc := make(chan error, 1)
	go func() { errc <- cp.Serve() }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case err := <-errc:
		cp.Close()
		return err
	case <-sig:
		fmt.Fprintln(os.Stderr, "dynagrid: draining (queued sweeps finish; interrupt again to force)")
		done := make(chan struct{})
		go func() { cp.Shutdown(); close(done) }()
		select {
		case <-done:
			return nil
		case <-sig:
			cp.Close()
			return nil
		}
	}
}

// runSubmit enqueues one sweep on a resident control plane and renders
// the merged rows exactly like a one-shot run — the rows travel as
// JSON, which round-trips float64 exactly, so the report is still
// byte-identical to a local run.
func runSubmit(cpAddr, path string, seeds, shardsN int, token string, timeout time.Duration, target report.Target, quiet bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	sw, grid, err := spec.Compile(data, seeds)
	if err != nil {
		return err
	}
	fleet := 0
	onStatus := func(st transport.SweepStatus) {
		fleet = st.Workers
		if !quiet {
			fmt.Fprintf(os.Stderr, "sweep %d: %d/%d runs, %d workers, %d requeues\n",
				st.Sweep, st.Done, st.Total, st.Workers, st.Requeues)
		}
	}
	rowsJSON, err := transport.SubmitSweep(cpAddr, token, transport.SubmitRequest{
		SeedsPerCell: seeds,
		Shards:       shardsN,
		Name:         filepath.Base(path),
		Spec:         data,
	}, timeout, onStatus)
	if err != nil {
		return err
	}
	var rows []anondyn.CellResult
	if err := json.Unmarshal(rowsJSON, &rows); err != nil {
		return fmt.Errorf("rows from control plane: %w", err)
	}
	doc := &report.Sweep{
		Spec:         sw.Name,
		SeedsPerCell: max(sw.SeedsPerCell, 1),
		BaseSeed:     sw.BaseSeed,
		Workers:      fleet,
		Cells:        rows,
		Title:        sw.RunTitle(path, len(rows)),
		Verdicts:     sw.Verdicts(rows),
		Storm:        sw.StormTimeline(),
	}
	if target.Format == report.FormatHTML {
		if doc.Series, err = grid.SeriesPerCell(); err != nil {
			return err
		}
	}
	if target.Stdout() {
		return target.Write(doc)
	}
	if !quiet && sw.Description != "" {
		fmt.Printf("# %s\n", sw.Description)
	}
	if err := spec.Table(doc.Title, rows).Fprint(os.Stdout); err != nil {
		return err
	}
	if err := report.FprintVerdicts(os.Stdout, doc.Verdicts); err != nil {
		return err
	}
	if err := target.Write(doc); err != nil {
		return err
	}
	if target.Enabled() && !quiet {
		fmt.Printf("(report written to %s)\n", target.Path)
	}
	return nil
}

// rowStream wires a CSV report target into the control plane's
// streaming merge: the file (or stdout) fills row by row as cells
// commit instead of materializing after the sweep.
type rowStream struct {
	stream *report.RowStream
	f      *os.File // nil for stdout
	err    error    // first write failure, surfaced after the run
}

// newRowStream opens the CSV target and writes its header; the column
// layout comes from the compiled cells since no row exists yet.
func newRowStream(target report.Target, cells []anondyn.Cell) (*rowStream, error) {
	w := io.Writer(os.Stdout)
	var f *os.File
	if target.Path != "" {
		var err error
		if f, err = os.Create(target.Path); err != nil {
			return nil, err
		}
		w = f
	}
	stream, err := report.NewRowStream(w, spec.CellsDeclareVariants(cells))
	if err != nil {
		if f != nil {
			f.Close()
		}
		return nil, err
	}
	return &rowStream{stream: stream, f: f}, nil
}

// onRow is the shard.Options.OnRow callback (runs under the plane's
// scheduling lock; the write is buffered and small).
func (rs *rowStream) onRow(_ int, row anondyn.CellResult) {
	if rs.err == nil {
		rs.err = rs.stream.Row(row)
	}
}

func (rs *rowStream) close() error {
	if rs.f != nil {
		if err := rs.f.Close(); rs.err == nil {
			rs.err = err
		}
	}
	return rs.err
}

// runSpecFile shards one scenario file across the workers and reports.
func runSpecFile(path string, opts shard.Options, target report.Target, quiet bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rs *rowStream
	if target.Format == report.FormatCSV {
		_, grid, err := spec.Compile(data, opts.SeedsPerCell)
		if err != nil {
			return err
		}
		if rs, err = newRowStream(target, grid.Cells()); err != nil {
			return err
		}
		opts.OnRow = rs.onRow
	}
	res, err := shard.Run(data, opts)
	if err != nil {
		if rs != nil {
			rs.close() //nolint:errcheck // the run error wins
		}
		return err
	}
	if rs != nil {
		if err := rs.close(); err != nil {
			return err
		}
	}
	doc := envelope(res, path, len(opts.Workers))
	if target.Format == report.FormatHTML {
		// The charts come from a local sequential pass: one extra run per
		// cell, next to nothing beside the distributed Monte-Carlo.
		_, grid, err := spec.Compile(data, opts.SeedsPerCell)
		if err != nil {
			return err
		}
		if doc.Series, err = grid.SeriesPerCell(); err != nil {
			return err
		}
	}

	if target.Stdout() {
		// Stdout report modes replace the human table so the output
		// stays machine-readable; the CSV rows already streamed.
		if rs != nil {
			return nil
		}
		return target.Write(doc)
	}

	if !quiet && res.Sweep.Description != "" {
		fmt.Printf("# %s\n", res.Sweep.Description)
	}
	if err := spec.Table(title(res, path), res.Rows).Fprint(os.Stdout); err != nil {
		return err
	}
	if err := report.FprintVerdicts(os.Stdout, res.Sweep.Verdicts(res.Rows)); err != nil {
		return err
	}
	if !quiet {
		fmt.Printf("(%d shards over %d workers, %d requeued)\n", len(res.Shards), len(opts.Workers), res.Requeues)
		for _, addr := range opts.Workers {
			fmt.Printf("  %s: %d runs\n", addr, res.RunsByWorker[addr])
		}
	}
	if rs == nil {
		if err := target.Write(doc); err != nil {
			return err
		}
	}
	if target.Enabled() && !quiet {
		fmt.Printf("(report written to %s)\n", target.Path)
	}
	return nil
}

// runSpecDir submits every scenario file in the directory to one
// in-process control plane over one worker fleet, so the sweeps run
// concurrently under fair round-robin scheduling. Results print in
// name order regardless of completion order; a file report target
// fans out per spec, and an HTML target gains a combined index page.
func runSpecDir(dir string, opts shard.Options, target report.Target, quiet bool) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var files []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		switch filepath.Ext(e.Name()) {
		case ".yaml", ".yml", ".json":
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return fmt.Errorf("%s: no scenario files (*.yaml, *.yml, *.json)", dir)
	}
	sort.Strings(files)

	cp, err := shard.NewControlPlane(shard.PlaneOptions{
		Token:            opts.Token,
		IOTimeout:        opts.IOTimeout,
		DialRetries:      opts.DialRetries,
		RetryDelay:       opts.RetryDelay,
		MaxPending:       opts.MaxPending,
		Log:              opts.Log,
		Metrics:          opts.Metrics,
		MetricsEveryRuns: opts.MetricsEveryRuns,
		AbortWhenEmpty:   true, // a fixed fleet that is gone is gone
	})
	if err != nil {
		return err
	}
	defer cp.Close()
	shardsN := opts.Shards
	if shardsN < 1 {
		shardsN = 2 * len(opts.Workers)
	}

	type job struct {
		path   string
		data   []byte
		target report.Target
		rs     *rowStream
		h      *shard.SweepHandle
	}
	jobs := make([]*job, 0, len(files))
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		j := &job{path: path, data: data, target: target.ForSpec(path)}
		var onRow func(int, anondyn.CellResult)
		if j.target.Format == report.FormatCSV && j.target.Path != "" {
			// Per-spec CSV files fill as their sweep's cells commit.
			// Stdout CSV stays buffered: concurrent sweeps would
			// interleave their rows.
			_, grid, err := spec.Compile(data, opts.SeedsPerCell)
			if err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
			if j.rs, err = newRowStream(j.target, grid.Cells()); err != nil {
				return err
			}
			onRow = j.rs.onRow
		}
		h, err := cp.Submit(data, shard.SubmitOptions{
			SeedsPerCell: opts.SeedsPerCell,
			Shards:       shardsN,
			Name:         filepath.Base(path),
			OnRow:        onRow,
		})
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		j.h = h
		jobs = append(jobs, j)
	}
	for _, addr := range opts.Workers {
		cp.AddWorker(addr)
	}

	var index []report.IndexEntry
	for i, j := range jobs {
		res, err := j.h.Wait()
		if err != nil {
			if j.rs != nil {
				j.rs.close() //nolint:errcheck // the sweep error wins
			}
			return fmt.Errorf("%s: %w", j.path, err)
		}
		if i > 0 {
			fmt.Println()
		}
		if err := emitJob(j.path, j.data, j.rs, res, opts, j.target, quiet); err != nil {
			return fmt.Errorf("%s: %w", j.path, err)
		}
		index = append(index, report.IndexEntry{
			Title: title(res, j.path),
			Path:  j.target.Path,
			Cells: res.Rows,
		})
	}
	cp.Shutdown()

	if target.Format == report.FormatHTML && target.Path != "" {
		if err := report.WriteIndexFile(target.Path, "sweep reports: "+dir, index); err != nil {
			return err
		}
		if !quiet {
			fmt.Printf("(index written to %s)\n", target.Path)
		}
	}
	return nil
}

// emitJob renders one finished directory-batch sweep: human table,
// dispatch summary, and the per-spec report artifact (unless its CSV
// already streamed).
func emitJob(path string, data []byte, rs *rowStream, res *shard.Result, opts shard.Options, target report.Target, quiet bool) error {
	if rs != nil {
		if err := rs.close(); err != nil {
			return err
		}
	}
	doc := envelope(res, path, len(opts.Workers))
	if target.Format == report.FormatHTML {
		_, grid, err := spec.Compile(data, opts.SeedsPerCell)
		if err != nil {
			return err
		}
		if doc.Series, err = grid.SeriesPerCell(); err != nil {
			return err
		}
	}
	if target.Stdout() {
		return target.Write(doc)
	}
	if !quiet && res.Sweep.Description != "" {
		fmt.Printf("# %s\n", res.Sweep.Description)
	}
	if err := spec.Table(title(res, path), res.Rows).Fprint(os.Stdout); err != nil {
		return err
	}
	if err := report.FprintVerdicts(os.Stdout, res.Sweep.Verdicts(res.Rows)); err != nil {
		return err
	}
	if !quiet {
		fmt.Printf("(%d shards over %d workers, %d requeued)\n", len(res.Shards), len(opts.Workers), res.Requeues)
	}
	if rs == nil {
		if err := target.Write(doc); err != nil {
			return err
		}
	}
	if target.Enabled() && !quiet {
		fmt.Printf("(report written to %s)\n", target.Path)
	}
	return nil
}

func title(res *shard.Result, path string) string {
	return res.Sweep.RunTitle(path, len(res.Rows))
}

// envelope builds the shared report.Sweep document. The cells array is
// the determinism contract — byte-identical to the local run's — while
// the envelope records run metadata ("workers" here counts worker
// processes; dynabench records its pool size), so parity checks compare
// .cells, as the CI distributed-smoke job does.
func envelope(res *shard.Result, path string, workers int) *report.Sweep {
	per := res.Sweep.SeedsPerCell
	if per < 1 {
		per = 1
	}
	return &report.Sweep{
		Spec:         res.Sweep.Name,
		SeedsPerCell: per,
		BaseSeed:     res.Sweep.BaseSeed,
		Workers:      workers,
		Cells:        res.Rows,
		Title:        title(res, path),
		// Verdicts derive from (spec, rows) alone, so the sharded
		// report carries the same verdict block as a local run.
		Verdicts: res.Sweep.Verdicts(res.Rows),
		Storm:    res.Sweep.StormTimeline(),
	}
}

func splitAddrs(list string) []string {
	var addrs []string
	for _, a := range strings.Split(list, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	return addrs
}
