package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"anondyn"
	"anondyn/internal/report"
	"anondyn/internal/shard"
	"anondyn/internal/spec"
)

const specPath = "../../examples/specs/er-crash-sweep.yaml"

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-workers", "h:1"}); err == nil || !strings.Contains(err.Error(), "-spec") {
		t.Errorf("missing -spec: %v", err)
	}
	if err := run([]string{"-spec", specPath}); err == nil || !strings.Contains(err.Error(), "-workers") {
		t.Errorf("missing -workers: %v", err)
	}
	if err := run([]string{"-badflag"}); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-spec", "no-such-file.yaml", "-workers", "h:1"}); err == nil {
		t.Error("missing spec file accepted")
	}
	if err := run([]string{"-spec", specPath, "-spec-dir", ".", "-workers", "h:1"}); err == nil ||
		!strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("-spec with -spec-dir: %v", err)
	}
	if err := run([]string{"-spec-dir", t.TempDir(), "-workers", "h:1"}); err == nil ||
		!strings.Contains(err.Error(), "no scenario files") {
		t.Errorf("empty -spec-dir: %v", err)
	}
}

// startWorkers spins n in-process sweep workers and returns their
// address list.
func startWorkers(t *testing.T, n int) string {
	t.Helper()
	var addrs []string
	for i := 0; i < n; i++ {
		w, err := shard.NewWorker("127.0.0.1:0", shard.WorkerOptions{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, w.Addr())
		done := make(chan struct{})
		go func() {
			defer close(done)
			w.Serve() //nolint:errcheck
		}()
		t.Cleanup(func() { w.Close(); <-done })
	}
	return strings.Join(addrs, ",")
}

func TestRunEndToEndJSONReport(t *testing.T) {
	workers := startWorkers(t, 2)
	out := filepath.Join(t.TempDir(), "dist.json")
	err := run([]string{
		"-spec", specPath, "-workers", workers, "-seeds", "3",
		"-timeout", (10 * time.Second).String(), "-quiet", "-report", out,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report.Sweep
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not JSON: %v", err)
	}

	// The distributed rows must equal a local run of the same spec.
	sw, grid, err := spec.Load(specPath, 3)
	if err != nil {
		t.Fatal(err)
	}
	localRows, err := grid.Run(anondyn.BatchOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Spec != sw.Name || rep.SeedsPerCell != 3 {
		t.Errorf("envelope = {spec: %q, seeds: %d}, want {%q, 3}", rep.Spec, rep.SeedsPerCell, sw.Name)
	}
	if !reflect.DeepEqual(rep.Cells, localRows) {
		t.Errorf("distributed cells differ from local run:\ndist  %+v\nlocal %+v", rep.Cells, localRows)
	}
}

func TestRunEndToEndCSVReport(t *testing.T) {
	workers := startWorkers(t, 1)
	out := filepath.Join(t.TempDir(), "dist.csv")
	err := run([]string{
		"-spec", specPath, "-workers", workers, "-seeds", "1",
		"-quiet", "-report", out,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	// Header plus one row per cell (er-crash-sweep has 4 cells).
	if len(lines) != 5 {
		t.Fatalf("CSV has %d lines, want 5:\n%s", len(lines), data)
	}
	if !strings.Contains(lines[0], "adversary") {
		t.Errorf("CSV header missing: %q", lines[0])
	}
}

// TestRunSpecDirBatch: the batch mode must run every spec in the
// directory through the coordinator over ONE worker fleet (the workers
// are never restarted between sweeps), producing per-spec rows
// identical to single-spec runs.
func TestRunSpecDirBatch(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"a-first.yaml", "b-second.yaml"} {
		data, err := os.ReadFile(specPath)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// A non-spec file must be ignored, not parsed.
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("not a spec"), 0o644); err != nil {
		t.Fatal(err)
	}
	workers := startWorkers(t, 2)
	// A file report target fans out to one derived file per spec
	// (out.json → out-a-first.json, out-b-second.json).
	repBase := filepath.Join(t.TempDir(), "out.json")
	err := run([]string{
		"-spec-dir", dir, "-workers", workers, "-seeds", "2",
		"-timeout", (10 * time.Second).String(), "-quiet", "-report", repBase,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, stem := range []string{"a-first", "b-second"} {
		path := strings.TrimSuffix(repBase, ".json") + "-" + stem + ".json"
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("per-spec report missing: %v", err)
		}
		var rep report.Sweep
		if err := json.Unmarshal(data, &rep); err != nil {
			t.Fatalf("%s is not JSON: %v", path, err)
		}
		if len(rep.Cells) == 0 {
			t.Errorf("%s has no cells", path)
		}
	}
	// The same fleet then serves a follow-up single-spec run: worker
	// processes survive the whole batch.
	out := filepath.Join(t.TempDir(), "after.json")
	if err := run([]string{
		"-spec", specPath, "-workers", workers, "-seeds", "2", "-quiet", "-report", out,
	}); err != nil {
		t.Fatalf("fleet unusable after batch: %v", err)
	}
}

// TestServiceModeFlagValidation: the service flags are modes of their
// own and reject the one-shot flag set.
func TestServiceModeFlagValidation(t *testing.T) {
	if err := run([]string{"-serve-coordinator", ":0", "-spec", specPath}); err == nil ||
		!strings.Contains(err.Error(), "-submit") {
		t.Errorf("-serve-coordinator with -spec: %v", err)
	}
	if err := run([]string{"-submit", "127.0.0.1:1"}); err == nil ||
		!strings.Contains(err.Error(), "-spec") {
		t.Errorf("-submit without -spec: %v", err)
	}
	if err := run([]string{"-submit", "127.0.0.1:1", "-spec", specPath, "-workers", "h:1"}); err == nil ||
		!strings.Contains(err.Error(), "one-shot") {
		t.Errorf("-submit with -workers: %v", err)
	}
}

// startPlaneWithWorker runs a resident control plane with one joined
// worker — the topology behind `dynagrid -serve-coordinator` plus
// `dynabench -join` — and returns the plane's address.
func startPlaneWithWorker(t *testing.T, token string) string {
	t.Helper()
	cp, err := shard.NewControlPlane(shard.PlaneOptions{
		Addr:      "127.0.0.1:0",
		Token:     token,
		IOTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	cpDone := make(chan struct{})
	go func() {
		defer close(cpDone)
		cp.Serve() //nolint:errcheck
	}()
	w, err := shard.NewWorker("", shard.WorkerOptions{
		Workers: 2, Token: token, RejoinDelay: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	wDone := make(chan struct{})
	go func() {
		defer close(wDone)
		w.JoinLoop(cp.Addr())
	}()
	t.Cleanup(func() {
		w.Close()
		<-wDone
		cp.Close()
		<-cpDone
	})
	return cp.Addr()
}

// TestSubmitAgainstControlPlane: `dynagrid -submit` against a resident
// plane yields the same report envelope and rows as a local run.
func TestSubmitAgainstControlPlane(t *testing.T) {
	addr := startPlaneWithWorker(t, "s3cret")
	out := filepath.Join(t.TempDir(), "submitted.json")
	err := run([]string{
		"-submit", addr, "-spec", specPath, "-seeds", "2", "-token", "s3cret",
		"-timeout", (10 * time.Second).String(), "-quiet", "-report", out,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report.Sweep
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not JSON: %v", err)
	}
	sw, grid, err := spec.Load(specPath, 2)
	if err != nil {
		t.Fatal(err)
	}
	localRows, err := grid.Run(anondyn.BatchOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Spec != sw.Name || rep.SeedsPerCell != 2 {
		t.Errorf("envelope = {spec: %q, seeds: %d}, want {%q, 2}", rep.Spec, rep.SeedsPerCell, sw.Name)
	}
	if !reflect.DeepEqual(rep.Cells, localRows) {
		t.Errorf("submitted cells differ from local run:\ndist  %+v\nlocal %+v", rep.Cells, localRows)
	}
	// Wrong token: the plane refuses the submission.
	if err := run([]string{
		"-submit", addr, "-spec", specPath, "-seeds", "1", "-token", "nope",
		"-timeout", (5 * time.Second).String(), "-quiet",
	}); err == nil {
		t.Error("submit with wrong token succeeded")
	}
}

// TestSpecDirHTMLIndex: an HTML batch report fans out per-spec pages
// and writes a combined index at the -report path linking them.
func TestSpecDirHTMLIndex(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"a-first.yaml", "b-second.yaml"} {
		data, err := os.ReadFile(specPath)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	workers := startWorkers(t, 2)
	outDir := t.TempDir()
	index := filepath.Join(outDir, "out.html")
	err := run([]string{
		"-spec-dir", dir, "-workers", workers, "-seeds", "1",
		"-timeout", (10 * time.Second).String(), "-quiet", "-report", index,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, stem := range []string{"a-first", "b-second"} {
		if _, err := os.Stat(filepath.Join(outDir, "out-"+stem+".html")); err != nil {
			t.Errorf("per-spec page missing: %v", err)
		}
	}
	data, err := os.ReadFile(index)
	if err != nil {
		t.Fatalf("index page missing: %v", err)
	}
	for _, want := range []string{
		`<a href="out-a-first.html">`,
		`<a href="out-b-second.html">`,
		"2 sweeps",
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("index missing %q", want)
		}
	}
}

// TestRunCSVReportStreamsRows: a file CSV target is written row by row
// during the sweep, yet ends up byte-identical to the buffered table of
// a local run — the diffable-artifact contract.
func TestRunCSVReportStreamsRows(t *testing.T) {
	workers := startWorkers(t, 2)
	out := filepath.Join(t.TempDir(), "dist.csv")
	err := run([]string{
		"-spec", specPath, "-workers", workers, "-seeds", "2",
		"-timeout", (10 * time.Second).String(), "-quiet", "-report", out,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	_, grid, err := spec.Load(specPath, 2)
	if err != nil {
		t.Fatal(err)
	}
	localRows, err := grid.Run(anondyn.BatchOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	if err := spec.Table("ignored", localRows).WriteCSV(&want); err != nil {
		t.Fatal(err)
	}
	if string(got) != want.String() {
		t.Errorf("streamed CSV differs from buffered local table:\nstream:\n%s\nbuffer:\n%s", got, want.String())
	}
}

func TestSplitAddrs(t *testing.T) {
	got := splitAddrs(" a:1, b:2 ,,c:3 ")
	want := []string{"a:1", "b:2", "c:3"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("splitAddrs = %v, want %v", got, want)
	}
}
