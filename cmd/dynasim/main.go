// Command dynasim runs one consensus scenario on the simulated
// anonymous dynamic network and reports outputs, rounds, the property
// checks of Definition 3, and the dynaDegree the adversary actually
// provided.
//
// Examples:
//
//	dynasim -algo dac  -n 7  -f 2 -adversary rotating:3 -crash 1@3,4@6
//	dynasim -algo dbac -n 11 -f 2 -adversary complete -byz 4:equivocate,9:extremist:1
//	dynasim -algo dac  -n 3  -adversary fig1 -eps 0.01 -trace run.jsonl
//	dynasim -algo dac  -n 6  -adversary halves -rounds 100   # stalls: below threshold
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"anondyn"
	"anondyn/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dynasim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dynasim", flag.ContinueOnError)
	var (
		algoName   = fs.String("algo", "dac", "algorithm: dac, dbac, dbac-pb, megaround, fullinfo, reliter, bacrel, floodmin")
		n          = fs.Int("n", 7, "network size")
		f          = fs.Int("f", 0, "fault bound")
		eps        = fs.Float64("eps", 1e-3, "ε of ε-agreement")
		advSpec    = fs.String("adversary", "complete", "complete | fig1 | halves | chasemin | isolate:<node> | er:<p> | rotating:<d> | clustered:<T> | random:<B>,<D> | starve:<d>")
		crashSpec  = fs.String("crash", "", "crash schedule: node@round[,node@round...]")
		byzSpec    = fs.String("byz", "", "byzantine nodes: node:strategy[:<arg>][,...]; strategies: silent, extremist:<v>, equivocate, noise, laggard:<v>, mimic:<t>")
		window     = fs.Int("window", 0, "piggyback window K (dbac-pb)")
		megaT      = fs.Int("megat", 2, "block length T (megaround)")
		pEnd       = fs.Int("pend", 0, "explicit phase budget (overrides ε-derived p_end)")
		maxRounds  = fs.Int("rounds", 0, "round budget (0 = engine default)")
		seed       = fs.Int64("seed", 1, "seed for random ports / adversaries")
		randPorts  = fs.Bool("randports", false, "use random per-node port numberings")
		concurrent = fs.Bool("concurrent", false, "use the goroutine-per-node engine")
		inputSpec  = fs.String("inputs", "spread", "spread | split:<k> | random")
		traceOut   = fs.String("trace", "", "write the execution event log (JSONL) to this file")
		showSeries = fs.Bool("series", false, "print the per-round convergence curve (log-scale sparkline)")
		maxBytes   = fs.Int("maxbytes", 0, "per-link bandwidth budget in bytes (0 = unlimited)")
		shuffle    = fs.Bool("shuffle", false, "randomize intra-round delivery order (seeded)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	adv, err := parseAdversary(*advSpec, *n, *seed)
	if err != nil {
		return err
	}
	crashes, err := parseCrashes(*crashSpec)
	if err != nil {
		return err
	}
	byz, err := parseByz(*byzSpec, *seed)
	if err != nil {
		return err
	}
	inputs, err := parseInputs(*inputSpec, *n, *seed)
	if err != nil {
		return err
	}
	algo, err := parseAlgo(*algoName)
	if err != nil {
		return err
	}

	tracker := anondyn.NewPhaseTracker()
	var series *anondyn.RangeSeries
	if *showSeries {
		series = anondyn.NewRangeSeries()
	}
	var rec *anondyn.Recorder
	if *traceOut != "" {
		rec = anondyn.NewRecorder()
	}
	s := anondyn.Scenario{
		N: *n, F: *f, Eps: *eps,
		Algorithm:       algo,
		PiggybackWindow: *window,
		MegaT:           *megaT,
		PEndOverride:    *pEnd,
		Inputs:          inputs,
		Adversary:       adv,
		Crashes:         crashes,
		Byzantine:       byz,
		MaxRounds:       *maxRounds,
		RandomPorts:     *randPorts,
		Seed:            *seed,
		Concurrent:      *concurrent,
		Tracker:         tracker,
		Series:          series,
		Recorder:        rec,
		KeepTrace:       true,
		MaxMessageBytes: *maxBytes,
		ShuffleDelivery: *shuffle,
	}
	res, err := s.Run()
	if err != nil {
		return err
	}

	fmt.Printf("%s  n=%d f=%d ε=%g  adversary=%s\n", algo, *n, *f, *eps, adv.Name())
	fmt.Printf("rounds: %d   all fault-free decided: %v\n", res.Rounds, res.Decided)
	fmt.Printf("messages: %d delivered, %d suppressed by the adversary\n",
		res.MessagesDelivered, res.MessagesLost)
	if res.MessagesOversized > 0 {
		fmt.Printf("bandwidth: %d messages exceeded the %d-byte link budget\n",
			res.MessagesOversized, *maxBytes)
	}

	nodes := make([]int, 0, len(res.Outputs))
	for node := range res.Outputs {
		nodes = append(nodes, node)
	}
	sort.Ints(nodes)
	for _, node := range nodes {
		fmt.Printf("  node %2d → %.8f (round %d)\n", node, res.Outputs[node], res.DecideRound[node])
	}
	if res.Decided {
		fmt.Printf("output range: %.3g   ε-agreement: %v   validity: %v\n",
			res.OutputRange(), res.EpsAgreement(*eps), res.Valid())
	}

	if len(res.Trace) > 0 {
		for _, T := range []int{1, 2, 4} {
			if T <= len(res.Trace) {
				fmt.Printf("trace satisfies (T=%d, D=%d)-dynaDegree\n",
					T, anondyn.MaxDynaDegree(res.Trace, res.FaultFree, T))
			}
		}
	}
	if p := tracker.MaxPhase(); p > 0 {
		fmt.Println("phase  |V(p)|  range(V(p))")
		for q := 0; q <= p && q <= 12; q++ {
			fmt.Printf("  %3d   %3d    %.8f\n", q, tracker.Count(q), tracker.Range(q))
		}
	}

	if series != nil && series.Len() > 0 {
		fmt.Printf("\nconvergence curve (range per round, log scale ▁=≤1e-6 … █=1):\n  %s\n",
			series.Sparkline(60, 1e-6))
		fmt.Printf("  rounds to range ≤ ε: %d\n", series.RoundsToRange(*eps))
	}

	if rec != nil {
		out, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		if err := trace.WriteJSONL(out, rec.Events()); err != nil {
			out.Close()
			return err
		}
		if err := out.Close(); err != nil {
			return err
		}
		fmt.Printf("event log (%d events) written to %s\n", rec.Len(), *traceOut)
	}
	return nil
}

func parseAlgo(s string) (anondyn.Algo, error) {
	switch strings.ToLower(s) {
	case "dac":
		return anondyn.AlgoDAC, nil
	case "dbac":
		return anondyn.AlgoDBAC, nil
	case "dbac-pb":
		return anondyn.AlgoDBACPiggyback, nil
	case "megaround":
		return anondyn.AlgoMegaRound, nil
	case "fullinfo":
		return anondyn.AlgoFullInfo, nil
	case "reliter":
		return anondyn.AlgoReliableIterated, nil
	case "bacrel":
		return anondyn.AlgoBACReliable, nil
	case "floodmin":
		return anondyn.AlgoFloodMin, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q", s)
	}
}

func parseAdversary(spec string, n int, seed int64) (anondyn.Adversary, error) {
	name, arg, _ := strings.Cut(spec, ":")
	switch name {
	case "complete":
		return anondyn.Complete(), nil
	case "fig1":
		if n != 3 {
			return nil, fmt.Errorf("fig1 is defined on exactly 3 nodes (got n=%d)", n)
		}
		return anondyn.Fig1(), nil
	case "halves":
		return anondyn.Halves(n), nil
	case "chasemin":
		return anondyn.ChaseMin(), nil
	case "isolate":
		victim, err := strconv.Atoi(arg)
		if err != nil {
			return nil, fmt.Errorf("isolate needs a victim node: %v", err)
		}
		return anondyn.Isolate(victim), nil
	case "er":
		p, err := strconv.ParseFloat(arg, 64)
		if err != nil {
			return nil, fmt.Errorf("er needs a probability: %v", err)
		}
		return anondyn.Probabilistic(p, seed), nil
	case "rotating", "clustered", "starve":
		d, err := strconv.Atoi(arg)
		if err != nil {
			return nil, fmt.Errorf("%s needs an integer argument: %v", name, err)
		}
		switch name {
		case "rotating":
			return anondyn.Rotating(d), nil
		case "clustered":
			return anondyn.Clustered(d), nil
		default:
			return anondyn.Starve(d), nil
		}
	case "random":
		parts := strings.Split(arg, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("random adversary wants random:<B>,<D>")
		}
		b, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, err
		}
		d, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, err
		}
		return anondyn.RandomDegree(b, d, 0.05, seed), nil
	default:
		return nil, fmt.Errorf("unknown adversary %q", spec)
	}
}

func parseCrashes(spec string) (map[int]anondyn.Crash, error) {
	if spec == "" {
		return nil, nil
	}
	crashes := make(map[int]anondyn.Crash)
	for _, part := range strings.Split(spec, ",") {
		nodeStr, roundStr, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("crash entry %q wants node@round", part)
		}
		node, err := strconv.Atoi(nodeStr)
		if err != nil {
			return nil, err
		}
		round, err := strconv.Atoi(roundStr)
		if err != nil {
			return nil, err
		}
		crashes[node] = anondyn.CrashAt(round)
	}
	return crashes, nil
}

func parseByz(spec string, seed int64) (map[int]anondyn.Strategy, error) {
	if spec == "" {
		return nil, nil
	}
	byz := make(map[int]anondyn.Strategy)
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(part, ":")
		if len(fields) < 2 {
			return nil, fmt.Errorf("byz entry %q wants node:strategy[:arg]", part)
		}
		node, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, err
		}
		arg := 0.0
		if len(fields) >= 3 {
			if arg, err = strconv.ParseFloat(fields[2], 64); err != nil {
				return nil, err
			}
		}
		switch fields[1] {
		case "silent":
			byz[node] = anondyn.Silent()
		case "extremist":
			byz[node] = anondyn.Extremist(arg)
		case "equivocate":
			byz[node] = anondyn.Equivocator(0, 1)
		case "noise":
			byz[node] = anondyn.RandomNoise(seed + int64(node))
		case "laggard":
			byz[node] = anondyn.Laggard(arg)
		case "mimic":
			byz[node] = anondyn.Mimic(int(arg))
		default:
			return nil, fmt.Errorf("unknown strategy %q", fields[1])
		}
	}
	return byz, nil
}

func parseInputs(spec string, n int, seed int64) ([]float64, error) {
	name, arg, _ := strings.Cut(spec, ":")
	switch name {
	case "spread":
		return anondyn.SpreadInputs(n), nil
	case "split":
		k := n / 2
		if arg != "" {
			var err error
			if k, err = strconv.Atoi(arg); err != nil {
				return nil, err
			}
		}
		return anondyn.SplitInputs(n, k), nil
	case "random":
		return anondyn.RandomInputs(n, seed), nil
	default:
		return nil, fmt.Errorf("unknown inputs %q", spec)
	}
}
