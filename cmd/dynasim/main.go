// Command dynasim runs one consensus scenario on the simulated
// anonymous dynamic network and reports outputs, rounds, the property
// checks of Definition 3, and the dynaDegree the adversary actually
// provided. With -seeds > 1 it runs a seeded Monte-Carlo batch of the
// same scenario on a worker pool and reports streaming aggregates
// instead; -report writes the batch report ("csv"/"json"/"html" stream
// to stdout, a path picks the format from its extension — .csv, .html
// for a self-contained HTML page, anything else JSON). -metrics streams
// live telemetry snapshots as NDJSON to a file or TCP address.
//
// -save-spec writes the flag configuration out as a declarative sweep
// file (a 1-cell matrix), and -spec runs such a file — the same format
// dynabench sweeps and the committed examples/specs artifacts use.
//
// Examples:
//
//	dynasim -algo dac  -n 7  -f 2 -adversary rotating:3 -crash 1@3,4@6
//	dynasim -algo dbac -n 11 -f 2 -adversary complete -byz 4:equivocate,9:extremist:1
//	dynasim -algo dac  -n 3  -adversary fig1 -eps 0.01 -trace run.jsonl
//	dynasim -algo dac  -n 6  -adversary halves -rounds 100   # stalls: below threshold
//	dynasim -algo dac  -n 9  -adversary er:0.3 -inputs random -seeds 200 -workers 8 -report batch.json
//	dynasim -algo dac  -n 9  -adversary er:0.3 -save-spec er.yaml   # flags → artifact
//	dynasim -spec er.yaml -seeds 50                                 # artifact → sweep
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"anondyn"
	"anondyn/internal/metrics"
	"anondyn/internal/report"
	"anondyn/internal/spec"
	"anondyn/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dynasim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dynasim", flag.ContinueOnError)
	var (
		algoName   = fs.String("algo", "dac", "algorithm: dac, dbac, dbac-pb, megaround, fullinfo, reliter, bacrel, floodmin")
		n          = fs.Int("n", 7, "network size")
		f          = fs.Int("f", 0, "fault bound")
		eps        = fs.Float64("eps", 1e-3, "ε of ε-agreement")
		advSpec    = fs.String("adversary", "complete", "complete | fig1 | halves | chasemin | isolate:<node> | er:<p> | rotating:<d> | clustered:<T> | random:<B>,<D> | starve:<d>")
		crashSpec  = fs.String("crash", "", "crash schedule: node@round[,node@round...]")
		byzSpec    = fs.String("byz", "", "byzantine nodes: node:strategy[:<arg>][,...]; strategies: silent, extremist:<v>, equivocate, noise, laggard:<v>, mimic:<t>")
		window     = fs.Int("window", 0, "piggyback window K (dbac-pb)")
		megaT      = fs.Int("megat", 2, "block length T (megaround)")
		pEnd       = fs.Int("pend", 0, "explicit phase budget (overrides ε-derived p_end)")
		maxRounds  = fs.Int("rounds", 0, "round budget (0 = engine default)")
		seed       = fs.Int64("seed", 1, "seed for random ports / adversaries")
		randPorts  = fs.Bool("randports", false, "use random per-node port numberings")
		concurrent = fs.Bool("concurrent", false, "use the goroutine-per-node engine")
		inputSpec  = fs.String("inputs", "spread", "spread | split:<k> | random")
		traceOut   = fs.String("trace", "", "write the execution event log (JSONL) to this file")
		showSeries = fs.Bool("series", false, "print the per-round convergence curve (log-scale sparkline)")
		maxBytes   = fs.Int("maxbytes", 0, "per-link bandwidth budget in bytes (0 = unlimited)")
		shuffle    = fs.Bool("shuffle", false, "randomize intra-round delivery order (seeded)")
		seedsN     = fs.Int("seeds", 1, "number of seeded runs; > 1 switches to Monte-Carlo batch mode (with -spec: override the file's seeds_per_cell)")
		workers    = fs.Int("workers", 0, "batch worker-pool size (0 = GOMAXPROCS)")
		reportOut  = fs.String("report", "", `batch report (implies batch mode): "csv"/"json"/"html" for stdout, or a path (.csv/.html → that format, else JSON)`)
		metricsOut = fs.String("metrics", "", "stream live metrics snapshots as NDJSON to this file or host:port address")
		specFile   = fs.String("spec", "", "run the sweep defined in this YAML/JSON scenario file instead of the flag scenario")
		saveSpec   = fs.String("save-spec", "", "write the flag scenario as a declarative spec file before running")
		validate   = fs.Bool("validate", false, "with -spec: parse, validate and compile the spec, then exit without running")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	coll, closeMetrics, err := metrics.Start(*metricsOut, 0)
	if err != nil {
		return err
	}
	defer closeMetrics() //nolint:errcheck // final snapshot write; fate shared with stdout

	if *specFile != "" {
		if *traceOut != "" || *showSeries || *reportOut != "" {
			return fmt.Errorf("-spec runs a sweep; -trace, -series and -report do not apply")
		}
		if *saveSpec != "" {
			return fmt.Errorf("-save-spec captures the scenario flags; it does not combine with -spec")
		}
		seedsOverride := 0
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "seeds" {
				seedsOverride = *seedsN
			}
		})
		if *validate {
			sw, grid, err := spec.Load(*specFile, 0)
			if err != nil {
				return err
			}
			fmt.Printf("%s: ok (%s)\n", *specFile, sw.RunTitle(*specFile, len(grid.Cells())))
			return nil
		}
		return runSpec(*specFile, seedsOverride, *workers, coll)
	}
	if *validate {
		return fmt.Errorf("-validate wants -spec (it dry-runs spec files)")
	}

	adv, err := parseAdversary(*advSpec, *n, *f, *seed)
	if err != nil {
		return err
	}
	crashes, err := parseCrashes(*crashSpec)
	if err != nil {
		return err
	}
	byz, err := parseByz(*byzSpec, *seed)
	if err != nil {
		return err
	}
	inputs, err := parseInputs(*inputSpec, *n, *seed)
	if err != nil {
		return err
	}
	algo, err := parseAlgo(*algoName)
	if err != nil {
		return err
	}

	if *saveSpec != "" {
		if *randPorts || *shuffle || *concurrent {
			return fmt.Errorf("-save-spec cannot capture -randports, -shuffle or -concurrent (not spec-expressible)")
		}
		sw, err := flagSweep(flagScenario{
			algo: strings.ToLower(*algoName), n: *n, f: *f, eps: *eps,
			adv: *advSpec, inputs: *inputSpec, crashes: crashes, byz: *byzSpec,
			window: *window, megaT: *megaT, pEnd: *pEnd,
			maxRounds: *maxRounds, maxBytes: *maxBytes,
			seeds: *seedsN, baseSeed: *seed,
			name: strings.TrimSuffix(filepath.Base(*saveSpec), filepath.Ext(*saveSpec)),
		})
		if err != nil {
			return err
		}
		if err := os.WriteFile(*saveSpec, sw.Encode(), 0o644); err != nil {
			return err
		}
		fmt.Printf("(spec written to %s)\n", *saveSpec)
	}

	if *seedsN < 1 {
		return fmt.Errorf("-seeds wants a positive count (got %d)", *seedsN)
	}
	if *seedsN > 1 || *reportOut != "" {
		if *traceOut != "" || *showSeries {
			return fmt.Errorf("-trace and -series are per-run views; they do not combine with batch mode (-seeds/-report)")
		}
		cfg := batchConfig{
			algoName: *algoName, algo: algo,
			n: *n, f: *f, eps: *eps,
			advSpec: *advSpec, byzSpec: *byzSpec, inputSpec: *inputSpec,
			crashes: crashes,
			window:  *window, megaT: *megaT, pEnd: *pEnd,
			maxRounds: *maxRounds, maxBytes: *maxBytes,
			randPorts: *randPorts, shuffle: *shuffle, concurrent: *concurrent,
			seeds:   anondyn.Seeds(*seedsN, *seed),
			workers: *workers,
			target:  report.ParseTarget(*reportOut),
			coll:    coll,
		}
		return runBatch(cfg)
	}

	tracker := anondyn.NewPhaseTracker()
	var series *anondyn.RangeSeries
	if *showSeries {
		series = anondyn.NewRangeSeries()
	}
	var rec *anondyn.Recorder
	if *traceOut != "" {
		rec = anondyn.NewRecorder()
	}
	var sink anondyn.MetricsSink
	if coll != nil {
		sink = coll
	}
	s := anondyn.Scenario{
		Metrics: sink,
		N:       *n, F: *f, Eps: *eps,
		Algorithm:       algo,
		PiggybackWindow: *window,
		MegaT:           *megaT,
		PEndOverride:    *pEnd,
		Inputs:          inputs,
		Adversary:       adv,
		Crashes:         crashes,
		Byzantine:       byz,
		MaxRounds:       *maxRounds,
		RandomPorts:     *randPorts,
		Seed:            *seed,
		Concurrent:      *concurrent,
		Tracker:         tracker,
		Series:          series,
		Recorder:        rec,
		KeepTrace:       true,
		MaxMessageBytes: *maxBytes,
		ShuffleDelivery: *shuffle,
	}
	res, err := s.Run()
	if err != nil {
		return err
	}

	fmt.Printf("%s  n=%d f=%d ε=%g  adversary=%s\n", algo, *n, *f, *eps, adv.Name())
	fmt.Printf("rounds: %d   all fault-free decided: %v\n", res.Rounds, res.Decided)
	fmt.Printf("messages: %d delivered, %d suppressed by the adversary\n",
		res.MessagesDelivered, res.MessagesLost)
	if res.MessagesOversized > 0 {
		fmt.Printf("bandwidth: %d messages exceeded the %d-byte link budget\n",
			res.MessagesOversized, *maxBytes)
	}

	nodes := make([]int, 0, len(res.Outputs))
	for node := range res.Outputs {
		nodes = append(nodes, node)
	}
	sort.Ints(nodes)
	for _, node := range nodes {
		fmt.Printf("  node %2d → %.8f (round %d)\n", node, res.Outputs[node], res.DecideRound[node])
	}
	if res.Decided {
		fmt.Printf("output range: %.3g   ε-agreement: %v   validity: %v\n",
			res.OutputRange(), res.EpsAgreement(*eps), res.Valid())
	}

	if len(res.Trace) > 0 {
		for _, T := range []int{1, 2, 4} {
			if T <= len(res.Trace) {
				fmt.Printf("trace satisfies (T=%d, D=%d)-dynaDegree\n",
					T, anondyn.MaxDynaDegree(res.Trace, res.FaultFree, T))
			}
		}
	}
	if p := tracker.MaxPhase(); p > 0 {
		fmt.Println("phase  |V(p)|  range(V(p))")
		for q := 0; q <= p && q <= 12; q++ {
			fmt.Printf("  %3d   %3d    %.8f\n", q, tracker.Count(q), tracker.Range(q))
		}
	}

	if series != nil && series.Len() > 0 {
		fmt.Printf("\nconvergence curve (range per round, log scale ▁=≤1e-6 … █=1):\n  %s\n",
			series.Sparkline(60, 1e-6))
		fmt.Printf("  rounds to range ≤ ε: %d\n", series.RoundsToRange(*eps))
	}

	if rec != nil {
		out, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		if err := trace.WriteJSONL(out, rec.Events()); err != nil {
			out.Close()
			return err
		}
		if err := out.Close(); err != nil {
			return err
		}
		fmt.Printf("event log (%d events) written to %s\n", rec.Len(), *traceOut)
	}
	return nil
}

// batchConfig carries one scenario family into Monte-Carlo batch mode:
// the specs are re-instantiated per seed so seeded adversaries, inputs
// and noise strategies vary across the batch.
type batchConfig struct {
	algoName  string
	algo      anondyn.Algo
	n, f      int
	eps       float64
	advSpec   string
	byzSpec   string
	inputSpec string
	crashes   map[int]anondyn.Crash
	window    int
	megaT     int
	pEnd      int
	maxRounds int
	maxBytes  int

	randPorts  bool
	shuffle    bool
	concurrent bool

	seeds   []int64
	workers int
	target  report.Target
	coll    *metrics.Collector
}

// scenario builds one seeded run of the family. The specs were
// validated before the batch started, so per-seed re-parsing cannot
// fail.
func (c batchConfig) scenario(seed int64) anondyn.Scenario {
	adv, _ := parseAdversary(c.advSpec, c.n, c.f, seed)
	byz, _ := parseByz(c.byzSpec, seed)
	inputs, _ := parseInputs(c.inputSpec, c.n, seed)
	return anondyn.Scenario{
		N: c.n, F: c.f, Eps: c.eps,
		Algorithm:        c.algo,
		PiggybackWindow:  c.window,
		MegaT:            c.megaT,
		PEndOverride:     c.pEnd,
		Inputs:           inputs,
		Adversary:        adv,
		Crashes:          c.crashes,
		Byzantine:        byz,
		MaxRounds:        c.maxRounds,
		RandomPorts:      c.randPorts,
		Seed:             seed,
		Concurrent:       c.concurrent,
		MaxMessageBytes:  c.maxBytes,
		ShuffleDelivery:  c.shuffle,
		AccountBandwidth: true,
	}
}

// seedRow is the compact per-run record of the JSON report.
type seedRow struct {
	Seed    int64   `json:"seed"`
	Decided bool    `json:"decided"`
	Rounds  int     `json:"rounds"`
	Range   float64 `json:"output_range"`
}

// batchReport is the report document of one Monte-Carlo batch. It
// implements report.Document, keeping the historical JSON shape.
type batchReport struct {
	Algorithm string              `json:"algorithm"`
	N         int                 `json:"n"`
	F         int                 `json:"f"`
	Eps       float64             `json:"eps"`
	Adversary string              `json:"adversary"`
	Inputs    string              `json:"inputs"`
	Workers   int                 `json:"workers"`
	BaseSeed  int64               `json:"base_seed"`
	Aggregate anondyn.BatchReport `json:"aggregate"`
	Runs      []seedRow           `json:"runs"`
	// Series is the first seed's range-per-round curve, recorded only
	// for the HTML report's convergence chart; not part of the JSON.
	Series []float64 `json:"-"`
}

// WriteJSON implements report.Document with the historical shape.
func (r *batchReport) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// WriteCSV implements report.Document: one row per seeded run.
func (r *batchReport) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"seed", "decided", "rounds", "output_range"}); err != nil {
		return err
	}
	for _, row := range r.Runs {
		if err := cw.Write([]string{
			strconv.FormatInt(row.Seed, 10),
			strconv.FormatBool(row.Decided),
			strconv.Itoa(row.Rounds),
			strconv.FormatFloat(row.Range, 'g', -1, 64),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteHTML implements report.Document: one self-contained page with
// the aggregate summary, the convergence chart of the first seed, and
// the per-seed table.
func (r *batchReport) WriteHTML(w io.Writer) error {
	agg := report.HTMLTable{
		Caption: "aggregate",
		Header:  []string{"decided", "violations", "rounds mean", "rounds p95", "range max"},
		Rows: [][]string{{
			fmt.Sprintf("%d/%d", r.Aggregate.Decided, r.Aggregate.Runs),
			fmt.Sprint(r.Aggregate.Violations),
			fmt.Sprintf("%.1f", r.Aggregate.Rounds.Mean),
			fmt.Sprintf("%.0f", r.Aggregate.Rounds.P95),
			fmt.Sprintf("%.3g", r.Aggregate.OutputRange.Max),
		}},
	}
	runs := report.HTMLTable{
		Caption: "runs",
		Header:  []string{"seed", "decided", "rounds", "output range"},
	}
	for _, row := range r.Runs {
		runs.Rows = append(runs.Rows, []string{
			strconv.FormatInt(row.Seed, 10),
			strconv.FormatBool(row.Decided),
			strconv.Itoa(row.Rounds),
			fmt.Sprintf("%.3g", row.Range),
		})
	}
	blocks := []any{agg}
	if len(r.Series) > 0 {
		blocks = append(blocks, report.HTMLChart{
			Caption: fmt.Sprintf("convergence (seed %d)", r.BaseSeed),
			Series:  r.Series,
			Eps:     r.Eps,
		})
	}
	blocks = append(blocks, runs)
	title := fmt.Sprintf("%s n=%d f=%d — %s", r.Algorithm, r.N, r.F, r.Adversary)
	sub := fmt.Sprintf("%d seeds · base seed %d · ε=%g · inputs %s", len(r.Runs), r.BaseSeed, r.Eps, r.Inputs)
	return report.WriteHTMLPage(w, title, sub, blocks...)
}

// runBatch executes the scenario family over the seed batch on the
// worker pool, streaming every result through the aggregate and
// per-run sinks, and prints (and optionally writes) the aggregates.
func runBatch(cfg batchConfig) error {
	stats := &anondyn.BatchStats{Eps: cfg.eps}
	rows := make([]seedRow, 0, len(cfg.seeds))
	rowSink := anondyn.SinkFunc(func(_ int, seed int64, res *anondyn.Result) error {
		rows = append(rows, seedRow{
			Seed: seed, Decided: res.Decided, Rounds: res.Rounds, Range: res.OutputRange(),
		})
		return nil
	})
	opts := anondyn.BatchOptions{Workers: cfg.workers, Retries: 0}
	if cfg.coll != nil {
		opts.Metrics = cfg.coll
	}
	err := anondyn.RunManyStream(cfg.seeds, cfg.scenario, anondyn.Sinks(stats, rowSink), opts)
	if err != nil {
		return err
	}

	doc := &batchReport{
		Algorithm: cfg.algoName,
		N:         cfg.n, F: cfg.f, Eps: cfg.eps,
		Adversary: cfg.advSpec,
		Inputs:    cfg.inputSpec,
		Workers:   cfg.workers,
		BaseSeed:  cfg.seeds[0],
		Aggregate: stats.Report(),
		Runs:      rows,
	}
	if cfg.target.Format == report.FormatHTML {
		// One extra sequential run of the first seed records the
		// convergence curve for the chart — noise beside the batch.
		series := anondyn.NewRangeSeries()
		s := cfg.scenario(cfg.seeds[0])
		s.Series = series
		if _, err := s.Run(); err != nil {
			return err
		}
		doc.Series = series.Series()
	}
	if cfg.target.Stdout() {
		// Stdout report modes replace the human summary so the output
		// stays machine-readable.
		return cfg.target.Write(doc)
	}

	fmt.Printf("%s  n=%d f=%d ε=%g  adversary=%s  batch of %d seeds (base %d)\n",
		cfg.algo, cfg.n, cfg.f, cfg.eps, cfg.advSpec, len(cfg.seeds), cfg.seeds[0])
	fmt.Printf("decided: %d/%d   safety violations: %d\n",
		stats.Decided(), stats.Runs(), stats.Violations())
	if r := stats.Rounds(); r.N > 0 {
		fmt.Printf("rounds:  mean %.1f  median %.0f  p95 %.0f  max %.0f\n",
			r.Mean, r.Median, r.P95, r.Max)
	}
	if g := stats.OutputRange(); g.N > 0 {
		fmt.Printf("range:   mean %.3g  max %.3g\n", g.Mean, g.Max)
	}
	if b := stats.Bytes(); b.N > 0 && b.Max > 0 {
		fmt.Printf("bytes:   mean %.0f per run\n", b.Mean)
	}

	if err := cfg.target.Write(doc); err != nil {
		return err
	}
	if cfg.target.Enabled() {
		fmt.Printf("report written to %s\n", cfg.target.Path)
	}
	return nil
}

func parseAlgo(s string) (anondyn.Algo, error) {
	return anondyn.ParseAlgo(s)
}

// parseAdversary resolves the -adversary spec through the shared
// factory registry (one grammar across dynasim, dynabench -advs and
// spec files), checking it against the scenario's n and f.
func parseAdversary(advSpec string, n, f int, seed int64) (anondyn.Adversary, error) {
	factory, err := anondyn.ParseAdversaryFactory(advSpec)
	if err != nil {
		return nil, err
	}
	cell := anondyn.Cell{N: n, F: f}
	if factory.Check != nil {
		if err := factory.Check(cell); err != nil {
			return nil, err
		}
	}
	return factory.New(cell, seed), nil
}

// runSpec runs a declarative sweep file, printing one aggregate row
// per cell — dynasim's window onto the same artifacts dynabench runs.
func runSpec(path string, seedsOverride, workers int, coll *metrics.Collector) error {
	sw, grid, err := spec.Load(path, seedsOverride)
	if err != nil {
		return err
	}
	opts := anondyn.BatchOptions{Workers: workers}
	if coll != nil {
		opts.Metrics = coll
	}
	rows, err := grid.Run(opts)
	if err != nil {
		return err
	}
	if err := spec.Table(sw.RunTitle(path, len(rows)), rows).Fprint(os.Stdout); err != nil {
		return err
	}
	return report.FprintVerdicts(os.Stdout, sw.Verdicts(rows))
}

// flagScenario carries the flag values -save-spec captures.
type flagScenario struct {
	algo      string
	n, f      int
	eps       float64
	adv       string
	inputs    string
	crashes   map[int]anondyn.Crash
	byz       string
	window    int
	megaT     int
	pEnd      int
	maxRounds int
	maxBytes  int
	seeds     int
	baseSeed  int64
	name      string
}

// flagSweep converts the flag scenario into a 1-cell declarative
// sweep.
func flagSweep(fc flagScenario) (*spec.Sweep, error) {
	sw := &spec.Sweep{
		Name:         fc.name,
		Description:  "saved from dynasim flags",
		Ns:           []int{fc.n},
		Fs:           []spec.Bound{{Lit: fc.f}},
		Epss:         []float64{fc.eps},
		Algorithms:   []string{fc.algo},
		Adversaries:  []string{fc.adv},
		SeedsPerCell: fc.seeds,
		BaseSeed:     fc.baseSeed,
		MaxRounds:    fc.maxRounds,
		Inputs:       fc.inputs,
	}
	sw.PEnd = fc.pEnd
	sw.PiggybackWindow = fc.window
	sw.MaxMessageBytes = fc.maxBytes
	if fc.algo == "megaround" {
		sw.MegaT = fc.megaT
	}
	if len(fc.crashes) > 0 {
		nodes := make([]int, 0, len(fc.crashes))
		for node := range fc.crashes {
			nodes = append(nodes, node)
		}
		sort.Ints(nodes)
		rounds := make([]int, len(nodes))
		for i, node := range nodes {
			rounds[i] = fc.crashes[node].Round
		}
		sw.Crashes = &spec.Crashes{NodeList: nodes, Rounds: rounds}
	}
	casts, err := specCasts(fc.byz)
	if err != nil {
		return nil, err
	}
	sw.Byzantine = casts
	// Validate eagerly (via a re-parse of the encoding) so a bad
	// capture fails before the file lands.
	if _, err := spec.Parse(sw.Encode()); err != nil {
		return nil, err
	}
	return sw, nil
}

// specCasts converts the -byz grammar into declarative casts.
func specCasts(byzSpec string) ([]spec.Cast, error) {
	if byzSpec == "" {
		return nil, nil
	}
	var casts []spec.Cast
	for _, part := range strings.Split(byzSpec, ",") {
		fields := strings.Split(part, ":")
		if len(fields) < 2 {
			return nil, fmt.Errorf("byz entry %q wants node:strategy[:arg]", part)
		}
		node, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, err
		}
		arg := 0.0
		if len(fields) >= 3 {
			if arg, err = strconv.ParseFloat(fields[2], 64); err != nil {
				return nil, err
			}
		}
		cast := spec.Cast{NodeList: []int{node}, Strategy: fields[1]}
		switch fields[1] {
		case "extremist", "laggard", "mimic":
			cast.Args = []float64{arg}
		case "silent", "equivocate", "noise":
		default:
			return nil, fmt.Errorf("unknown strategy %q", fields[1])
		}
		casts = append(casts, cast)
	}
	return casts, nil
}

func parseCrashes(spec string) (map[int]anondyn.Crash, error) {
	if spec == "" {
		return nil, nil
	}
	crashes := make(map[int]anondyn.Crash)
	for _, part := range strings.Split(spec, ",") {
		nodeStr, roundStr, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("crash entry %q wants node@round", part)
		}
		node, err := strconv.Atoi(nodeStr)
		if err != nil {
			return nil, err
		}
		round, err := strconv.Atoi(roundStr)
		if err != nil {
			return nil, err
		}
		crashes[node] = anondyn.CrashAt(round)
	}
	return crashes, nil
}

func parseByz(spec string, seed int64) (map[int]anondyn.Strategy, error) {
	if spec == "" {
		return nil, nil
	}
	byz := make(map[int]anondyn.Strategy)
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(part, ":")
		if len(fields) < 2 {
			return nil, fmt.Errorf("byz entry %q wants node:strategy[:arg]", part)
		}
		node, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, err
		}
		arg := 0.0
		if len(fields) >= 3 {
			if arg, err = strconv.ParseFloat(fields[2], 64); err != nil {
				return nil, err
			}
		}
		switch fields[1] {
		case "silent":
			byz[node] = anondyn.Silent()
		case "extremist":
			byz[node] = anondyn.Extremist(arg)
		case "equivocate":
			byz[node] = anondyn.Equivocator(0, 1)
		case "noise":
			byz[node] = anondyn.RandomNoise(seed + int64(node))
		case "laggard":
			byz[node] = anondyn.Laggard(arg)
		case "mimic":
			byz[node] = anondyn.Mimic(int(arg))
		default:
			return nil, fmt.Errorf("unknown strategy %q", fields[1])
		}
	}
	return byz, nil
}

func parseInputs(spec string, n int, seed int64) ([]float64, error) {
	name, arg, _ := strings.Cut(spec, ":")
	switch name {
	case "spread":
		return anondyn.SpreadInputs(n), nil
	case "split":
		k := n / 2
		if arg != "" {
			var err error
			if k, err = strconv.Atoi(arg); err != nil {
				return nil, err
			}
		}
		return anondyn.SplitInputs(n, k), nil
	case "random":
		return anondyn.RandomInputs(n, seed), nil
	default:
		return nil, fmt.Errorf("unknown inputs %q", spec)
	}
}
