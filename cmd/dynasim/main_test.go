package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"anondyn"
)

func TestParseAlgo(t *testing.T) {
	for name, want := range map[string]anondyn.Algo{
		"dac": anondyn.AlgoDAC, "DBAC": anondyn.AlgoDBAC, "dbac-pb": anondyn.AlgoDBACPiggyback,
		"megaround": anondyn.AlgoMegaRound, "fullinfo": anondyn.AlgoFullInfo,
		"reliter": anondyn.AlgoReliableIterated, "bacrel": anondyn.AlgoBACReliable,
		"floodmin": anondyn.AlgoFloodMin,
	} {
		got, err := parseAlgo(name)
		if err != nil || got != want {
			t.Errorf("parseAlgo(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := parseAlgo("paxos"); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestParseAdversary(t *testing.T) {
	cases := []struct {
		spec string
		want string
	}{
		{"complete", "complete"},
		{"halves", "split(2 groups)"},
		{"rotating:3", "rotating(d=3)"},
		{"clustered:4", "clustered(T=4)"},
		{"starve:2", "starve(d=2)"},
		{"random:3,4", "randomDegree(B=3,D=4,extra=0.05)"},
		{"isolate:2", "isolate(2)"},
		{"chasemin", "chaseMin"},
		{"er:0.30", "er(p=0.3)"},
		{"er2:0.30", "er2(p=0.3)"},
	}
	for _, tc := range cases {
		a, err := parseAdversary(tc.spec, 7, 1, 1)
		if err != nil {
			t.Errorf("parseAdversary(%q): %v", tc.spec, err)
			continue
		}
		if a.Name() != tc.want {
			t.Errorf("parseAdversary(%q).Name() = %q, want %q", tc.spec, a.Name(), tc.want)
		}
	}
	if a, err := parseAdversary("fig1", 3, 0, 1); err != nil || !strings.Contains(a.Name(), "fig1") {
		t.Errorf("fig1: %v", err)
	}
	// Registry extensions reach dynasim too: symbolic degrees resolve
	// against the scenario's n and f.
	if a, err := parseAdversary("rotating:crashdeg", 9, 0, 1); err != nil || !strings.Contains(a.Name(), "d=4") {
		t.Errorf("rotating:crashdeg at n=9: %v, %v", a, err)
	}
	for _, bad := range []string{"fig1", "rotating:x", "random:3", "er:zz", "isolate:", "warp", "isolate:9"} {
		n := 7 // fig1 invalid at n=7, as is victim 9
		if _, err := parseAdversary(bad, n, 1, 1); err == nil {
			t.Errorf("parseAdversary(%q) accepted", bad)
		}
	}
}

func TestParseCrashes(t *testing.T) {
	crashes, err := parseCrashes("1@3,4@0")
	if err != nil {
		t.Fatal(err)
	}
	if len(crashes) != 2 || crashes[1].Round != 3 || crashes[4].Round != 0 {
		t.Errorf("crashes = %+v", crashes)
	}
	if got, _ := parseCrashes(""); got != nil {
		t.Error("empty spec should give nil")
	}
	for _, bad := range []string{"1", "1@x", "y@2"} {
		if _, err := parseCrashes(bad); err == nil {
			t.Errorf("parseCrashes(%q) accepted", bad)
		}
	}
}

func TestParseByz(t *testing.T) {
	byz, err := parseByz("2:silent,3:extremist:1,4:equivocate,5:noise,6:laggard:0.5,7:mimic:0", 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(byz) != 6 {
		t.Fatalf("parsed %d strategies, want 6", len(byz))
	}
	for node, wantName := range map[int]string{
		2: "silent", 3: "extremist(1)", 4: "equivocator(0|1)",
		5: "randomNoise", 6: "laggard(0.5)", 7: "mimic(0)",
	} {
		if got := byz[node].Name(); got != wantName {
			t.Errorf("node %d strategy = %q, want %q", node, got, wantName)
		}
	}
	for _, bad := range []string{"2", "x:silent", "2:quantum", "2:extremist:x"} {
		if _, err := parseByz(bad, 1); err == nil {
			t.Errorf("parseByz(%q) accepted", bad)
		}
	}
}

func TestParseInputs(t *testing.T) {
	sp, err := parseInputs("spread", 5, 1)
	if err != nil || len(sp) != 5 || sp[4] != 1 {
		t.Errorf("spread: %v %v", sp, err)
	}
	si, err := parseInputs("split:2", 5, 1)
	if err != nil || si[1] != 0 || si[2] != 1 {
		t.Errorf("split: %v %v", si, err)
	}
	sd, err := parseInputs("split", 6, 1)
	if err != nil || sd[2] != 0 || sd[3] != 1 {
		t.Errorf("split default: %v %v", sd, err)
	}
	ri, err := parseInputs("random", 5, 1)
	if err != nil || len(ri) != 5 {
		t.Errorf("random: %v %v", ri, err)
	}
	if _, err := parseInputs("fibonacci", 5, 1); err == nil {
		t.Error("unknown inputs accepted")
	}
	if _, err := parseInputs("split:x", 5, 1); err == nil {
		t.Error("bad split arg accepted")
	}
}

// TestRunEndToEnd drives the whole CLI path once.
func TestRunEndToEnd(t *testing.T) {
	if err := run([]string{"-algo", "dac", "-n", "5", "-f", "1",
		"-adversary", "rotating:2", "-crash", "1@2", "-eps", "0.01"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := run([]string{"-algo", "nope"}); err == nil {
		t.Error("bad algorithm accepted")
	}
}

// TestRunBatchMode drives the -seeds worker-pool path with a JSON
// report.
func TestRunBatchMode(t *testing.T) {
	out := filepath.Join(t.TempDir(), "batch.json")
	if err := run([]string{"-algo", "dac", "-n", "7", "-f", "2",
		"-adversary", "er:0.5", "-inputs", "random",
		"-seeds", "12", "-workers", "3", "-report", out}); err != nil {
		t.Fatalf("batch run: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	var report batchReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("report not valid JSON: %v", err)
	}
	if report.Aggregate.Runs != 12 || len(report.Runs) != 12 {
		t.Errorf("report covers %d/%d runs, want 12", report.Aggregate.Runs, len(report.Runs))
	}
	if report.Aggregate.Decided != 12 || report.Aggregate.Violations != 0 {
		t.Errorf("aggregate = %+v", report.Aggregate)
	}
	if report.Runs[0].Seed != 1 || !report.Runs[0].Decided {
		t.Errorf("first run row = %+v", report.Runs[0])
	}

	if err := run([]string{"-seeds", "0", "-report", out}); err == nil {
		t.Error("-seeds 0 accepted")
	}
}

// TestSaveSpecThenRunSpec: the flags → artifact → sweep round trip.
func TestSaveSpecThenRunSpec(t *testing.T) {
	dir := t.TempDir()
	saved := filepath.Join(dir, "er.yaml")
	if err := run([]string{"-algo", "dac", "-n", "7", "-f", "1",
		"-adversary", "er:0.5", "-inputs", "random",
		"-crash", "1@3", "-byz", "", "-seeds", "1",
		"-save-spec", saved}); err != nil {
		t.Fatalf("save-spec run: %v", err)
	}
	data, err := os.ReadFile(saved)
	if err != nil {
		t.Fatalf("spec not written: %v", err)
	}
	for _, want := range []string{"ns: [7]", "er:0.5", "nodes: [1]", "rounds: [3]"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("saved spec missing %q:\n%s", want, data)
		}
	}
	if err := run([]string{"-spec", saved, "-seeds", "5"}); err != nil {
		t.Fatalf("running saved spec: %v", err)
	}
}

// TestSaveSpecCapturesByzantine: strategies and their arguments
// survive the capture.
func TestSaveSpecCapturesByzantine(t *testing.T) {
	dir := t.TempDir()
	saved := filepath.Join(dir, "byz.yaml")
	if err := run([]string{"-algo", "dbac", "-n", "11", "-f", "2",
		"-byz", "4:equivocate,9:extremist:1", "-save-spec", saved}); err != nil {
		t.Fatalf("save-spec run: %v", err)
	}
	data, err := os.ReadFile(saved)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"strategy: equivocate", "strategy: extremist", "args: [1.0]"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("saved spec missing %q:\n%s", want, data)
		}
	}
}

func TestSpecModeRejectsPerRunViews(t *testing.T) {
	if err := run([]string{"-spec", "x.yaml", "-series"}); err == nil {
		t.Error("-spec with -series accepted")
	}
	if err := run([]string{"-spec", "does-not-exist.yaml"}); err == nil {
		t.Error("missing spec file accepted")
	}
	if err := run([]string{"-adversary", "complete", "-randports", "-save-spec", "x.yaml"}); err == nil {
		t.Error("-save-spec with -randports accepted")
	}
}
