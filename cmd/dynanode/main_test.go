package main

import (
	"sync"
	"testing"
	"time"

	"anondyn/internal/adversary"
	"anondyn/internal/transport"
)

func TestProcessFactory(t *testing.T) {
	dac, err := processFactory("dac", 0, 0.5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := dac(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Value() != 0.5 {
		t.Errorf("DAC input = %g", p.Value())
	}

	dbac, err := processFactory("dbac", 1, 0.25, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dbac(6, 0); err != nil {
		t.Errorf("DBAC factory: %v", err)
	}
	// Resilience violations surface when the factory runs (the hub
	// tells the node n only at connect time).
	if _, err := dbac(5, 0); err == nil {
		t.Error("DBAC with n=5f accepted")
	}

	if _, err := processFactory("raft", 0, 0.5, 0.1); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-algo", "bogus"}); err == nil {
		t.Error("bogus algorithm accepted")
	}
	if err := run([]string{"-nope"}); err == nil {
		t.Error("bad flag accepted")
	}
}

// TestRunEndToEnd drives the node CLI against an in-process hub.
func TestRunEndToEnd(t *testing.T) {
	hub, err := transport.NewHub("127.0.0.1:0", transport.HubConfig{
		N:         2,
		Adversary: adversary.NewComplete(),
		IOTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	hubDone := make(chan error, 1)
	go func() {
		_, err := hub.Serve()
		hubDone <- err
	}()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i, input := range []string{"0.2", "0.8"} {
		wg.Add(1)
		go func(i int, input string) {
			defer wg.Done()
			errs[i] = run([]string{"-addr", hub.Addr(), "-algo", "dac",
				"-input", input, "-eps", "0.01", "-timeout", "10s"})
		}(i, input)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("node %d: %v", i, err)
		}
	}
	select {
	case err := <-hubDone:
		if err != nil {
			t.Errorf("hub: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("hub did not finish")
	}
}
