// Command dynanode runs one consensus node against a dynahub
// coordinator. The node learns only the network size and its own local
// port from the hub — it is anonymous end to end, exactly as the model
// prescribes.
//
//	dynanode -addr 127.0.0.1:7000 -algo dac -input 0.35 -eps 0.001
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"anondyn/internal/core"
	"anondyn/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dynanode:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dynanode", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", "127.0.0.1:7000", "hub address")
		algo    = fs.String("algo", "dac", "algorithm: dac | dbac")
		input   = fs.Float64("input", 0.5, "initial value in [0,1]")
		eps     = fs.Float64("eps", 1e-3, "ε of ε-agreement")
		f       = fs.Int("f", 0, "fault bound (dbac)")
		timeout = fs.Duration("timeout", 30*time.Second, "I/O timeout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	factory, err := processFactory(*algo, *f, *input, *eps)
	if err != nil {
		return err
	}
	res, err := transport.RunClient(*addr, transport.ClientConfig{
		NewProcess: factory,
		IOTimeout:  *timeout,
	})
	if err != nil {
		return err
	}
	if !res.Decided {
		return fmt.Errorf("execution ended after %d rounds without a decision", res.Rounds)
	}
	fmt.Printf("decided %.8f after %d rounds (n=%d, my port %d)\n",
		res.Output, res.Rounds, res.N, res.SelfPort)
	return nil
}

func processFactory(algo string, f int, input, eps float64) (func(n, selfPort int) (core.Process, error), error) {
	switch algo {
	case "dac":
		return func(n, selfPort int) (core.Process, error) {
			return core.NewDAC(n, selfPort, input, eps)
		}, nil
	case "dbac":
		return func(n, selfPort int) (core.Process, error) {
			return core.NewDBAC(n, f, selfPort, input, eps)
		}, nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", algo)
	}
}
