// Command dynabench regenerates the experiment tables E1–E8 recorded in
// EXPERIMENTS.md: the reproduction of every quantitative claim of the
// paper (convergence rates, resilience and dynaDegree thresholds,
// worst-case round counts, the §VII bandwidth trade-off). Experiments
// run concurrently on a worker pool; tables always print in registry
// order. -sweep switches to the declarative scenario-matrix engine:
// every combination of -ns, -fs, -epss, -algos and -advs is measured
// over -seeds Monte-Carlo runs and reported as one aggregate row per
// cell, optionally as JSON.
//
// Usage:
//
//	dynabench                      # run every experiment
//	dynabench -exp E4              # run one experiment
//	dynabench -list                # list experiments
//	dynabench -csv dir/            # additionally write one CSV per table
//	dynabench -sweep -ns 5,7,9,11 -algos dac,fullinfo -advs complete,rotating:3 \
//	          -seeds 50 -workers 8 -report sweep.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"anondyn"
	"anondyn/internal/analysis"
	"anondyn/internal/experiments"
	"anondyn/internal/harness"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dynabench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dynabench", flag.ContinueOnError)
	var (
		exp       = fs.String("exp", "", "run only this experiment (e.g. E3)")
		list      = fs.Bool("list", false, "list available experiments and exit")
		csvDir    = fs.String("csv", "", "directory to write per-experiment CSV files into")
		workers   = fs.Int("workers", 0, "worker-pool size for experiments (outer and inner pools) and sweeps (0 = GOMAXPROCS)")
		sweep     = fs.Bool("sweep", false, "run a scenario-matrix sweep instead of the experiment registry")
		nsSpec    = fs.String("ns", "5,7,9,11", "sweep axis: network sizes")
		fsSpec    = fs.String("fs", "0", "sweep axis: fault bounds")
		epsSpec   = fs.String("epss", "1e-3", "sweep axis: ε values")
		algoSpec  = fs.String("algos", "dac", "sweep axis: algorithms (dac,dbac,…)")
		advSpec   = fs.String("advs", "complete", "sweep axis: adversaries (complete | halves | er:<p> | rotating:<d> | clustered:<T> | starve:<d> | random:<B>,<D>)")
		seedsN    = fs.Int("seeds", 20, "sweep: Monte-Carlo runs per cell")
		baseSeed  = fs.Int64("seed", 0, "sweep: base seed")
		maxRounds = fs.Int("rounds", 20000, "sweep: round budget per run")
		reportOut = fs.String("report", "", "sweep: write the aggregate rows as JSON to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *sweep {
		return runSweep(sweepFlags{
			ns: *nsSpec, fs: *fsSpec, epss: *epsSpec, algos: *algoSpec, advs: *advSpec,
			seeds: *seedsN, baseSeed: *baseSeed, maxRounds: *maxRounds,
			workers: *workers, reportOut: *reportOut,
		})
	}

	// One flag governs every pool: the outer experiment pool below and
	// the Monte-Carlo batches the experiments spawn internally.
	experiments.Workers = *workers

	registry := experiments.Registry()
	if *list {
		for _, e := range registry {
			fmt.Printf("%-4s %s\n", e.ID, e.Desc)
		}
		return nil
	}

	selected := registry
	if *exp != "" {
		selected = nil
		for _, e := range registry {
			if strings.EqualFold(e.ID, *exp) {
				selected = []experiments.Experiment{e}
				break
			}
		}
		if selected == nil {
			return fmt.Errorf("unknown experiment %q (use -list)", *exp)
		}
	}

	// Regenerate the selected tables concurrently; the ordered sink
	// prints them in registry order as they become available.
	return harness.Run(len(selected),
		func(i int) (*analysis.Table, error) {
			return selected[i].Run(), nil
		},
		func(i int, tb *analysis.Table) error {
			if i > 0 {
				fmt.Println()
			}
			if err := tb.Fprint(os.Stdout); err != nil {
				return err
			}
			if *csvDir != "" {
				return writeCSV(*csvDir, selected[i].ID, tb)
			}
			return nil
		},
		harness.Options{Workers: *workers})
}

func writeCSV(dir, id string, tb *analysis.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, strings.ToLower(id)+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tb.WriteCSV(f); err != nil {
		f.Close()
		return fmt.Errorf("write %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("(csv written to %s)\n", path)
	return nil
}

// sweepFlags carries the parsed -sweep axes.
type sweepFlags struct {
	ns, fs, epss, algos, advs string
	seeds                     int
	baseSeed                  int64
	maxRounds                 int
	workers                   int
	reportOut                 string
}

// sweepReport is the JSON envelope of one sweep.
type sweepReport struct {
	SeedsPerCell int                  `json:"seeds_per_cell"`
	BaseSeed     int64                `json:"base_seed"`
	Workers      int                  `json:"workers"`
	Cells        []anondyn.CellResult `json:"cells"`
}

// runSweep builds the Grid from the axis flags, runs it on the worker
// pool, prints one aggregate row per cell, and optionally writes JSON.
func runSweep(sf sweepFlags) error {
	ns, err := parseInts(sf.ns)
	if err != nil {
		return fmt.Errorf("-ns: %w", err)
	}
	fbounds, err := parseInts(sf.fs)
	if err != nil {
		return fmt.Errorf("-fs: %w", err)
	}
	epss, err := parseFloats(sf.epss)
	if err != nil {
		return fmt.Errorf("-epss: %w", err)
	}
	var algos []anondyn.Algo
	for _, name := range strings.Split(sf.algos, ",") {
		a, err := anondyn.ParseAlgo(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		algos = append(algos, a)
	}
	var specs []string
	for _, tok := range strings.Split(sf.advs, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		// random:<B>,<D> spans a list comma: a bare-number token
		// belongs to the previous spec.
		if _, err := strconv.Atoi(tok); err == nil && len(specs) > 0 {
			specs[len(specs)-1] += "," + tok
			continue
		}
		specs = append(specs, tok)
	}
	var advs []anondyn.AdversaryFactory
	for _, spec := range specs {
		f, err := parseAdvFactory(spec)
		if err != nil {
			return err
		}
		advs = append(advs, f)
	}

	grid := anondyn.Grid{
		Ns: ns, Fs: fbounds, Epss: epss,
		Algorithms:   algos,
		Adversaries:  advs,
		SeedsPerCell: sf.seeds,
		BaseSeed:     sf.baseSeed,
		MaxRounds:    sf.maxRounds,
	}
	rows, err := grid.Run(anondyn.BatchOptions{Workers: sf.workers})
	if err != nil {
		return err
	}

	tb := analysis.NewTable(
		fmt.Sprintf("sweep: %d cells × %d seeds", len(rows), max(sf.seeds, 1)),
		"n", "f", "eps", "algorithm", "adversary", "decided", "violations",
		"rounds mean", "rounds p95", "range max")
	for _, r := range rows {
		tb.AddRowf(r.N, r.F, r.Eps, r.Algorithm, r.Adversary,
			fmt.Sprintf("%d/%d", r.Decided, r.Runs), r.Violations,
			r.Rounds.Mean, r.Rounds.P95, r.OutputRange.Max)
	}
	if err := tb.Fprint(os.Stdout); err != nil {
		return err
	}

	if sf.reportOut != "" {
		data, err := json.MarshalIndent(sweepReport{
			SeedsPerCell: max(sf.seeds, 1),
			BaseSeed:     sf.baseSeed,
			Workers:      sf.workers,
			Cells:        rows,
		}, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(sf.reportOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("(report written to %s)\n", sf.reportOut)
	}
	return nil
}

// parseAdvFactory resolves a sweep adversary spec into a seedable
// factory. Specs mirror dynasim's -adversary grammar minus the
// n-specific entries (fig1, isolate).
func parseAdvFactory(spec string) (anondyn.AdversaryFactory, error) {
	name, arg, _ := strings.Cut(spec, ":")
	mk := anondyn.AdversaryFactory{Name: spec}
	switch name {
	case "complete":
		mk.New = func(int, int64) anondyn.Adversary { return anondyn.Complete() }
	case "halves":
		mk.New = func(n int, _ int64) anondyn.Adversary { return anondyn.Halves(n) }
	case "chasemin":
		mk.New = func(int, int64) anondyn.Adversary { return anondyn.ChaseMin() }
	case "er":
		p, err := strconv.ParseFloat(arg, 64)
		if err != nil {
			return mk, fmt.Errorf("er needs a probability: %v", err)
		}
		mk.New = func(_ int, seed int64) anondyn.Adversary { return anondyn.Probabilistic(p, seed) }
	case "rotating", "clustered", "starve":
		d, err := strconv.Atoi(arg)
		if err != nil {
			return mk, fmt.Errorf("%s needs an integer argument: %v", name, err)
		}
		switch name {
		case "rotating":
			mk.New = func(int, int64) anondyn.Adversary { return anondyn.Rotating(d) }
		case "clustered":
			mk.New = func(int, int64) anondyn.Adversary { return anondyn.Clustered(d) }
		default:
			mk.New = func(int, int64) anondyn.Adversary { return anondyn.Starve(d) }
		}
	case "random":
		parts := strings.Split(arg, ",")
		if len(parts) != 2 {
			return mk, fmt.Errorf("random adversary wants random:<B>,<D>")
		}
		b, err := strconv.Atoi(parts[0])
		if err != nil {
			return mk, err
		}
		d, err := strconv.Atoi(parts[1])
		if err != nil {
			return mk, err
		}
		mk.New = func(_ int, seed int64) anondyn.Adversary { return anondyn.RandomDegree(b, d, 0.05, seed) }
	default:
		return mk, fmt.Errorf("unknown sweep adversary %q", spec)
	}
	return mk, nil
}

func parseInts(spec string) ([]int, error) {
	var out []int
	for _, s := range strings.Split(spec, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(spec string) ([]float64, error) {
	var out []float64
	for _, s := range strings.Split(spec, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
