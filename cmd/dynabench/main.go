// Command dynabench regenerates the experiment tables E1–E8 recorded in
// EXPERIMENTS.md: the reproduction of every quantitative claim of the
// paper (convergence rates, resilience and dynaDegree thresholds,
// worst-case round counts, the §VII bandwidth trade-off). Experiments
// run concurrently on a worker pool; tables always print in registry
// order. -sweep switches to the declarative scenario-matrix engine:
// every combination of -ns, -fs, -epss, -algos and -advs is measured
// over -seeds Monte-Carlo runs and reported as one aggregate row per
// cell, optionally as JSON.
//
// Declarative sweeps: -spec runs a committed YAML/JSON scenario file,
// -spec-dir runs a whole directory of them (the CI smoke job), and
// -save-spec writes the -sweep flags back out as a spec file, so every
// flag-driven sweep can become a reviewable artifact.
//
// -serve turns the process into a distributed sweep worker: it listens
// for a dynagrid coordinator and executes the shards it is sent —
// (spec, run-range) slices of a scenario matrix — on the local
// harness pool, streaming per-run records back in run order. -join
// instead dials into a resident dynagrid -serve-coordinator control
// plane (reconnecting until shutdown); SIGINT/SIGTERM drains
// gracefully — finish the shard in flight, announce the leave, exit.
// -token carries the shared secret of the shard handshake.
//
// Usage:
//
//	dynabench                      # run every experiment
//	dynabench -exp E4              # run one experiment
//	dynabench -list                # list experiments
//	dynabench -csv dir/            # additionally write one CSV per table
//	dynabench -sweep -ns 5,7,9,11 -algos dac,fullinfo -advs complete,rotating:3 \
//	          -seeds 50 -workers 8 -report sweep.json
//	dynabench -sweep -ns 5,7 -advs er:0.3 -save-spec er.yaml
//	dynabench -spec examples/specs/e1-dac-convergence.yaml
//	dynabench -spec-dir examples/specs -seeds 1   # smoke every artifact
//	dynabench -serve 127.0.0.1:7101 -workers 4    # distributed sweep worker
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"

	"anondyn"
	"anondyn/internal/analysis"
	"anondyn/internal/experiments"
	"anondyn/internal/harness"
	"anondyn/internal/metrics"
	"anondyn/internal/report"
	"anondyn/internal/shard"
	"anondyn/internal/spec"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dynabench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dynabench", flag.ContinueOnError)
	var (
		exp        = fs.String("exp", "", "run only this experiment (e.g. E3)")
		list       = fs.Bool("list", false, "list available experiments and exit")
		csvDir     = fs.String("csv", "", "directory to write per-experiment CSV files into")
		workers    = fs.Int("workers", 0, "worker-pool size for experiments (outer and inner pools) and sweeps (0 = GOMAXPROCS)")
		sweep      = fs.Bool("sweep", false, "run a scenario-matrix sweep instead of the experiment registry")
		nsSpec     = fs.String("ns", "5,7,9,11", "sweep axis: network sizes")
		fsSpec     = fs.String("fs", "0", "sweep axis: fault bounds")
		epsSpec    = fs.String("epss", "1e-3", "sweep axis: ε values")
		algoSpec   = fs.String("algos", "dac", "sweep axis: algorithms (dac,dbac,…)")
		advSpec    = fs.String("advs", "complete", "sweep axis: adversaries (complete | halves | chasemin | fig1 | isolate:<v> | rotating:<d> | clustered:<T> | starve:<d> | er:<p>[,<seed>] | random:<B>,<D>[,<extra>[,<seed>]] | starveperiod:<T>; degrees accept crashdeg/byzdeg)")
		seedsN     = fs.Int("seeds", 20, "sweep: Monte-Carlo runs per cell (with -spec/-spec-dir: override the file's seeds_per_cell)")
		baseSeed   = fs.Int64("seed", 0, "sweep: base seed")
		maxRounds  = fs.Int("rounds", 20000, "sweep: round budget per run")
		reportOut  = fs.String("report", "", `sweep: "csv"/"json"/"html" for stdout, or a path (.csv/.html → that format, else JSON); with -spec-dir, one file per spec`)
		metricsOut = fs.String("metrics", "", "stream live metrics snapshots as NDJSON to this file or host:port address")
		specFile   = fs.String("spec", "", "run the sweep defined in this YAML/JSON scenario file")
		specDir    = fs.String("spec-dir", "", "run every scenario file (*.yaml, *.yml, *.json) in this directory")
		validate   = fs.Bool("validate", false, "with -spec/-spec-dir: parse, validate and compile the spec(s), then exit without running")
		saveSpec   = fs.String("save-spec", "", "with -sweep: additionally write the sweep as a spec file")
		serveAddr  = fs.String("serve", "", "run as a distributed sweep worker on this address (shards arrive from dynagrid; -workers sizes the per-shard pool)")
		joinAddr   = fs.String("join", "", "worker mode: dial into a dynagrid -serve-coordinator control plane at this address (reconnects until shutdown; combines with or replaces -serve)")
		token      = fs.String("token", "", "worker mode: shared secret for the shard handshake (must match the coordinator's -token; empty disables auth)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	coll, closeMetrics, err := metrics.Start(*metricsOut, 0)
	if err != nil {
		return err
	}
	defer closeMetrics() //nolint:errcheck // final snapshot write; fate shared with stdout

	if *serveAddr != "" || *joinAddr != "" {
		if *sweep || *specFile != "" || *specDir != "" {
			return fmt.Errorf("-serve/-join is a worker mode; the sweep arrives from the dynagrid coordinator")
		}
		wopts := shard.WorkerOptions{
			Workers: *workers,
			Token:   *token,
			Log: func(format string, a ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", a...)
			},
		}
		if coll != nil {
			wopts.Metrics = coll
		}
		w, err := shard.NewWorker(*serveAddr, wopts)
		if err != nil {
			return err
		}
		if *joinAddr == "" {
			fmt.Printf("sweep worker listening on %s\n", w.Addr())
			return w.Serve()
		}
		return serveJoined(w, *serveAddr != "", *joinAddr)
	}

	if *specFile != "" || *specDir != "" {
		if *sweep {
			return fmt.Errorf("-sweep and -spec/-spec-dir are mutually exclusive (the file already is the sweep)")
		}
		if *saveSpec != "" {
			return fmt.Errorf("-save-spec captures -sweep flags; it does not combine with -spec/-spec-dir")
		}
		seedsOverride := 0
		if explicit["seeds"] {
			seedsOverride = *seedsN
		}
		if *specDir != "" && *specFile != "" {
			return fmt.Errorf("-spec and -spec-dir are mutually exclusive")
		}
		if *validate {
			if *specDir != "" {
				return validateSpecDir(*specDir)
			}
			return validateSpecFile(*specFile)
		}
		target := report.ParseTarget(*reportOut)
		if *specDir != "" {
			return runSpecDir(*specDir, seedsOverride, *workers, target, coll)
		}
		return runSpecFile(*specFile, seedsOverride, *workers, target, coll, true)
	}
	if *validate {
		return fmt.Errorf("-validate wants -spec or -spec-dir (it dry-runs spec files)")
	}

	if *sweep {
		return runSweep(sweepFlags{
			ns: *nsSpec, fs: *fsSpec, epss: *epsSpec, algos: *algoSpec, advs: *advSpec,
			seeds: *seedsN, baseSeed: *baseSeed, maxRounds: *maxRounds,
			workers: *workers, reportOut: *reportOut, saveSpec: *saveSpec,
		}, coll)
	}
	if *saveSpec != "" {
		return fmt.Errorf("-save-spec wants -sweep (it captures the sweep flags)")
	}

	// One flag governs every pool: the outer experiment pool below and
	// the Monte-Carlo batches the experiments spawn internally.
	experiments.Workers = *workers

	registry := experiments.Registry()
	if *list {
		for _, e := range registry {
			fmt.Printf("%-4s %s\n", e.ID, e.Desc)
		}
		return nil
	}

	selected := registry
	if *exp != "" {
		selected = nil
		for _, e := range registry {
			if strings.EqualFold(e.ID, *exp) {
				selected = []experiments.Experiment{e}
				break
			}
		}
		if selected == nil {
			return fmt.Errorf("unknown experiment %q (use -list)", *exp)
		}
	}

	// Regenerate the selected tables concurrently; the ordered sink
	// prints them in registry order as they become available.
	return harness.Run(len(selected),
		func(i int) (*analysis.Table, error) {
			return selected[i].Run(), nil
		},
		func(i int, tb *analysis.Table) error {
			if i > 0 {
				fmt.Println()
			}
			if err := tb.Fprint(os.Stdout); err != nil {
				return err
			}
			if *csvDir != "" {
				return writeCSV(*csvDir, selected[i].ID, tb)
			}
			return nil
		},
		harness.Options{Workers: *workers})
}

// serveJoined runs the worker against a resident control plane — and,
// when listen is set, the legacy listener alongside — until SIGINT or
// SIGTERM, which drains gracefully: the shard in flight finishes, the
// leave frame goes out (so the control plane requeues nothing), and
// only then does the process exit.
func serveJoined(w *shard.Worker, listen bool, cpAddr string) error {
	errc := make(chan error, 1)
	if listen {
		fmt.Printf("sweep worker listening on %s\n", w.Addr())
		go func() { errc <- w.Serve() }()
	}
	fmt.Printf("joining control plane at %s\n", cpAddr)
	joined := make(chan struct{})
	go func() {
		w.JoinLoop(cpAddr)
		close(joined)
	}()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case err := <-errc:
		w.Close()
		<-joined
		return err
	case <-sig:
		fmt.Fprintln(os.Stderr, "dynabench: draining (current shard finishes, then leave)")
		w.Drain()
		<-joined
		w.Close()
		return nil
	}
}

func writeCSV(dir, id string, tb *analysis.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, strings.ToLower(id)+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tb.WriteCSV(f); err != nil {
		f.Close()
		return fmt.Errorf("write %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("(csv written to %s)\n", path)
	return nil
}

// sweepFlags carries the parsed -sweep axes.
type sweepFlags struct {
	ns, fs, epss, algos, advs string
	seeds                     int
	baseSeed                  int64
	maxRounds                 int
	workers                   int
	reportOut                 string
	saveSpec                  string
}

// runSweep builds the Grid from the axis flags, optionally saves it as
// a spec file, runs it on the worker pool, prints one aggregate row
// per cell, and optionally writes the report.
func runSweep(sf sweepFlags, coll *metrics.Collector) error {
	grid, err := sf.grid()
	if err != nil {
		return err
	}
	if sf.saveSpec != "" {
		if err := writeGridSpec(grid, sf.saveSpec); err != nil {
			return err
		}
		fmt.Printf("(spec written to %s)\n", sf.saveSpec)
	}
	title := fmt.Sprintf("sweep: %d cells × %d seeds", len(grid.Cells()), max(sf.seeds, 1))
	return printSweep(grid, title, nil, sf.workers, report.ParseTarget(sf.reportOut), coll)
}

// grid assembles the sweep Grid from the axis flags.
func (sf sweepFlags) grid() (anondyn.Grid, error) {
	var grid anondyn.Grid
	ns, err := parseInts(sf.ns)
	if err != nil {
		return grid, fmt.Errorf("-ns: %w", err)
	}
	fbounds, err := parseInts(sf.fs)
	if err != nil {
		return grid, fmt.Errorf("-fs: %w", err)
	}
	epss, err := parseFloats(sf.epss)
	if err != nil {
		return grid, fmt.Errorf("-epss: %w", err)
	}
	var algos []anondyn.Algo
	for _, name := range strings.Split(sf.algos, ",") {
		a, err := anondyn.ParseAlgo(strings.TrimSpace(name))
		if err != nil {
			return grid, err
		}
		algos = append(algos, a)
	}
	var advs []anondyn.AdversaryFactory
	for _, tok := range splitAdvSpecs(sf.advs) {
		f, err := anondyn.ParseAdversaryFactory(tok)
		if err != nil {
			return grid, err
		}
		advs = append(advs, f)
	}
	return anondyn.Grid{
		Ns: ns, Fs: fbounds, Epss: epss,
		Algorithms:   algos,
		Adversaries:  advs,
		SeedsPerCell: sf.seeds,
		BaseSeed:     sf.baseSeed,
		MaxRounds:    sf.maxRounds,
	}, nil
}

// splitAdvSpecs splits the -advs list, letting the commas inside
// multi-argument adversary specs (random:<B>,<D>,… / er:<p>,<seed>)
// span list commas: a token that is not a spec of its own — a number,
// or a symbolic degree like crashdeg — joins the previous spec when
// the merge parses. Tokens that resolve neither way stay standalone so
// the registry reports them by name.
func splitAdvSpecs(list string) []string {
	var specs []string
	for _, tok := range strings.Split(list, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		if len(specs) > 0 {
			if _, err := anondyn.ParseAdversaryFactory(tok); err != nil {
				merged := specs[len(specs)-1] + "," + tok
				if _, err := anondyn.ParseAdversaryFactory(merged); err == nil {
					specs[len(specs)-1] = merged
					continue
				}
			}
		}
		specs = append(specs, tok)
	}
	return specs
}

// writeGridSpec captures a flag-built grid as a spec file.
func writeGridSpec(grid anondyn.Grid, path string) error {
	sw, err := spec.FromGrid(grid)
	if err != nil {
		return err
	}
	sw.Name = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	sw.Description = "saved from dynabench -sweep flags"
	return os.WriteFile(path, sw.Encode(), 0o644)
}

// printSweep runs one grid, prints the aggregate table (unless a
// stdout report mode replaces it), and writes the requested report.
// The HTML format additionally runs one extra seed per cell to chart
// its convergence curve. A sweep with a stress section (sw non-nil)
// additionally evaluates and prints its storm verdicts.
func printSweep(grid anondyn.Grid, title string, sw *spec.Sweep, workers int, target report.Target, coll *metrics.Collector) error {
	opts := anondyn.BatchOptions{Workers: workers}
	if coll != nil {
		opts.Metrics = coll
	}
	rows, err := grid.Run(opts)
	if err != nil {
		return err
	}
	doc := &report.Sweep{
		SeedsPerCell: max(grid.SeedsPerCell, 1),
		BaseSeed:     grid.BaseSeed,
		Workers:      workers,
		Cells:        rows,
		Title:        title,
	}
	if sw != nil {
		doc.Spec = sw.Name
		doc.Verdicts = sw.Verdicts(rows)
		doc.Storm = sw.StormTimeline()
	}
	if target.Format == report.FormatHTML {
		if doc.Series, err = grid.SeriesPerCell(); err != nil {
			return err
		}
	}
	if target.Stdout() {
		// Machine output replaces the human table.
		return target.Write(doc)
	}
	if err := spec.Table(title, rows).Fprint(os.Stdout); err != nil {
		return err
	}
	if err := report.FprintVerdicts(os.Stdout, doc.Verdicts); err != nil {
		return err
	}
	if err := target.Write(doc); err != nil {
		return err
	}
	if target.Enabled() {
		fmt.Printf("(report written to %s)\n", target.Path)
	}
	return nil
}

// validateSpecFile dry-runs one spec file: parse, validate, compile —
// every check a real run performs before its first scenario — then
// report and exit. Unknown keys, bad values and uncompilable grids all
// surface with their key-citing errors and a non-zero exit.
func validateSpecFile(path string) error {
	sw, grid, err := spec.Load(path, 0)
	if err != nil {
		return err
	}
	fmt.Printf("%s: ok (%s)\n", path, sw.RunTitle(path, len(grid.Cells())))
	return nil
}

// validateSpecDir dry-runs every scenario file in one directory (the
// same file set runSpecDir would execute).
func validateSpecDir(dir string) error {
	files, err := specDirFiles(dir)
	if err != nil {
		return err
	}
	for _, path := range files {
		if err := validateSpecFile(path); err != nil {
			return err
		}
	}
	return nil
}

// runSpecFile runs one declarative sweep file. seedsOverride > 0
// replaces the file's seeds_per_cell (the CI one-seed smoke).
func runSpecFile(path string, seedsOverride, workers int, target report.Target, coll *metrics.Collector, banner bool) error {
	sw, grid, err := spec.Load(path, seedsOverride)
	if err != nil {
		return err
	}
	if banner && sw.Description != "" {
		fmt.Printf("# %s\n", sw.Description)
	}
	return printSweep(grid, sw.RunTitle(path, len(grid.Cells())), sw, workers, target, coll)
}

// runSpecDir runs every scenario file in a directory, sorted by name.
// A file report target fans out to one derived file per spec.
func runSpecDir(dir string, seedsOverride, workers int, target report.Target, coll *metrics.Collector) error {
	files, err := specDirFiles(dir)
	if err != nil {
		return err
	}
	for i, path := range files {
		if i > 0 {
			fmt.Println()
		}
		if err := runSpecFile(path, seedsOverride, workers, target.ForSpec(path), coll, true); err != nil {
			return err
		}
	}
	return nil
}

// specDirFiles lists a directory's scenario files, sorted by name.
func specDirFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		switch filepath.Ext(e.Name()) {
		case ".yaml", ".yml", ".json":
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("%s: no scenario files (*.yaml, *.yml, *.json)", dir)
	}
	sort.Strings(files)
	return files, nil
}

func parseInts(spec string) ([]int, error) {
	var out []int
	for _, s := range strings.Split(spec, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(spec string) ([]float64, error) {
	var out []float64
	for _, s := range strings.Split(spec, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
