// Command dynabench regenerates the experiment tables E1–E8 recorded in
// EXPERIMENTS.md: the reproduction of every quantitative claim of the
// paper (convergence rates, resilience and dynaDegree thresholds,
// worst-case round counts, the §VII bandwidth trade-off).
//
// Usage:
//
//	dynabench              # run every experiment
//	dynabench -exp E4      # run one experiment
//	dynabench -list        # list experiments
//	dynabench -csv dir/    # additionally write one CSV per table
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"anondyn/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dynabench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dynabench", flag.ContinueOnError)
	var (
		exp    = fs.String("exp", "", "run only this experiment (e.g. E3)")
		list   = fs.Bool("list", false, "list available experiments and exit")
		csvDir = fs.String("csv", "", "directory to write per-experiment CSV files into")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	registry := experiments.Registry()
	if *list {
		for _, e := range registry {
			fmt.Printf("%-4s %s\n", e.ID, e.Desc)
		}
		return nil
	}

	selected := registry
	if *exp != "" {
		selected = nil
		for _, e := range registry {
			if strings.EqualFold(e.ID, *exp) {
				selected = []experiments.Experiment{e}
				break
			}
		}
		if selected == nil {
			return fmt.Errorf("unknown experiment %q (use -list)", *exp)
		}
	}

	for i, e := range selected {
		if i > 0 {
			fmt.Println()
		}
		tb := e.Run()
		if err := tb.Fprint(os.Stdout); err != nil {
			return err
		}
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				return err
			}
			path := filepath.Join(*csvDir, strings.ToLower(e.ID)+".csv")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := tb.WriteCSV(f); err != nil {
				f.Close()
				return fmt.Errorf("write %s: %w", path, err)
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("(csv written to %s)\n", path)
		}
	}
	return nil
}
