package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"anondyn/internal/report"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("-list: %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "E99"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunSingleExperimentWithCSV(t *testing.T) {
	dir := t.TempDir()
	// E4 is the fastest experiment.
	if err := run([]string{"-exp", "E4", "-csv", dir}); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "e4.csv"))
	if err != nil {
		t.Fatalf("csv not written: %v", err)
	}
	if len(data) == 0 {
		t.Error("empty csv")
	}
}

func TestRunSweepWithReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "sweep.json")
	if err := run([]string{"-sweep", "-ns", "5,7", "-algos", "dac",
		"-advs", "complete,random:2,3", "-seeds", "4", "-workers", "2",
		"-report", out}); err != nil {
		t.Fatalf("sweep: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	var rep report.Sweep
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report not valid JSON: %v", err)
	}
	// 2 sizes × 1 algorithm × 2 adversaries (random:2,3 spans the comma).
	if len(rep.Cells) != 4 {
		t.Fatalf("%d cells, want 4", len(rep.Cells))
	}
	if rep.SeedsPerCell != 4 || rep.Cells[0].Runs != 4 {
		t.Errorf("seeds per cell = %d, first cell runs = %d",
			rep.SeedsPerCell, rep.Cells[0].Runs)
	}
	if rep.Cells[1].Adversary != "random:2,3" {
		t.Errorf("adversary label = %q", rep.Cells[1].Adversary)
	}
}

func TestRunSweepBadAxes(t *testing.T) {
	for _, args := range [][]string{
		{"-sweep", "-ns", "x"},
		{"-sweep", "-algos", "paxos"},
		{"-sweep", "-advs", "warp"},
		{"-sweep", "-epss", "zz"},
	} {
		if err := run(args); err == nil {
			t.Errorf("%v accepted", args)
		}
	}
}

// TestSpecMatchesFlagSweep is the parity contract: a spec file
// reproduces the corresponding flag-driven sweep row-for-row at equal
// seeds.
func TestSpecMatchesFlagSweep(t *testing.T) {
	dir := t.TempDir()
	flagOut := filepath.Join(dir, "flags.json")
	if err := run([]string{"-sweep", "-ns", "5,7", "-algos", "dac,fullinfo",
		"-advs", "complete,rotating:3", "-seeds", "3", "-seed", "42",
		"-report", flagOut}); err != nil {
		t.Fatalf("flag sweep: %v", err)
	}

	specPath := filepath.Join(dir, "parity.yaml")
	specText := `name: parity
description: flag-parity fixture
ns: [5, 7]
epss: [1e-3]
algorithms: [dac, fullinfo]
adversaries: ["complete", "rotating:3"]
seeds_per_cell: 3
base_seed: 42
max_rounds: 20000
`
	if err := os.WriteFile(specPath, []byte(specText), 0o644); err != nil {
		t.Fatal(err)
	}
	specOut := filepath.Join(dir, "spec.json")
	if err := run([]string{"-spec", specPath, "-report", specOut}); err != nil {
		t.Fatalf("spec sweep: %v", err)
	}

	var flagReport, specReport report.Sweep
	for path, dst := range map[string]*report.Sweep{flagOut: &flagReport, specOut: &specReport} {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(data, dst); err != nil {
			t.Fatal(err)
		}
	}
	if len(flagReport.Cells) != 8 {
		t.Fatalf("flag sweep produced %d cells, want 8", len(flagReport.Cells))
	}
	if !reflect.DeepEqual(flagReport.Cells, specReport.Cells) {
		t.Errorf("spec rows differ from flag rows:\n%+v\n%+v", flagReport.Cells, specReport.Cells)
	}
}

// TestSaveSpecRoundTrip: -save-spec emits a file whose -spec run
// reproduces the sweep that saved it.
func TestSaveSpecRoundTrip(t *testing.T) {
	dir := t.TempDir()
	saved := filepath.Join(dir, "saved.yaml")
	flagOut := filepath.Join(dir, "flags.json")
	if err := run([]string{"-sweep", "-ns", "5,7", "-advs", "er:0.6,random:2,3",
		"-seeds", "2", "-report", flagOut, "-save-spec", saved}); err != nil {
		t.Fatalf("sweep with -save-spec: %v", err)
	}
	specOut := filepath.Join(dir, "spec.json")
	if err := run([]string{"-spec", saved, "-report", specOut}); err != nil {
		t.Fatalf("saved spec failed to run: %v", err)
	}
	var flagReport, specReport report.Sweep
	for path, dst := range map[string]*report.Sweep{flagOut: &flagReport, specOut: &specReport} {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(data, dst); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(flagReport.Cells, specReport.Cells) {
		t.Errorf("saved-spec rows differ from the sweep that saved them:\n%+v\n%+v",
			flagReport.Cells, specReport.Cells)
	}
}

// TestSpecDirSmoke mirrors the CI specs job on the committed files:
// every examples/specs artifact must run at one seed.
func TestSpecDirSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every committed spec")
	}
	if err := run([]string{"-spec-dir", "../../examples/specs", "-seeds", "1"}); err != nil {
		t.Fatalf("spec-dir smoke: %v", err)
	}
}

func TestSpecModeBadInputs(t *testing.T) {
	for _, args := range [][]string{
		{"-spec", "does-not-exist.yaml"},
		{"-spec-dir", "does-not-exist"},
		{"-spec", "x.yaml", "-spec-dir", "y"},
		{"-save-spec", "out.yaml"}, // wants -sweep
	} {
		if err := run(args); err == nil {
			t.Errorf("%v accepted", args)
		}
	}
}

// TestAdvsSymbolicDegrees: the registry grammar's symbolic degree
// tokens span -advs list commas like numeric arguments do.
func TestAdvsSymbolicDegrees(t *testing.T) {
	out := filepath.Join(t.TempDir(), "sym.json")
	if err := run([]string{"-sweep", "-ns", "9", "-advs",
		"random:4,crashdeg,0.05,rotating:crashdeg", "-seeds", "2", "-report", out}); err != nil {
		t.Fatalf("symbolic -advs: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report.Sweep
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 2 {
		t.Fatalf("%d cells, want 2 (random spec spans its commas)", len(rep.Cells))
	}
	if rep.Cells[0].Adversary != "random:4,crashdeg,0.05" || rep.Cells[1].Adversary != "rotating:crashdeg" {
		t.Errorf("adversary labels = %q, %q", rep.Cells[0].Adversary, rep.Cells[1].Adversary)
	}
}

func TestServeModeFlagExclusion(t *testing.T) {
	for _, args := range [][]string{
		{"-serve", "127.0.0.1:0", "-sweep"},
		{"-serve", "127.0.0.1:0", "-spec", "x.yaml"},
		{"-serve", "127.0.0.1:0", "-spec-dir", "dir"},
	} {
		if err := run(args); err == nil || !strings.Contains(err.Error(), "-serve") {
			t.Errorf("run(%v) = %v, want -serve exclusion error", args, err)
		}
	}
	// A bad listen address surfaces as an error rather than a hang.
	if err := run([]string{"-serve", "256.256.256.256:99999"}); err == nil {
		t.Error("bad -serve address accepted")
	}
}
