package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("-list: %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "E99"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunSingleExperimentWithCSV(t *testing.T) {
	dir := t.TempDir()
	// E4 is the fastest experiment.
	if err := run([]string{"-exp", "E4", "-csv", dir}); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "e4.csv"))
	if err != nil {
		t.Fatalf("csv not written: %v", err)
	}
	if len(data) == 0 {
		t.Error("empty csv")
	}
}
