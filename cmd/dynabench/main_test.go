package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("-list: %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "E99"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunSingleExperimentWithCSV(t *testing.T) {
	dir := t.TempDir()
	// E4 is the fastest experiment.
	if err := run([]string{"-exp", "E4", "-csv", dir}); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "e4.csv"))
	if err != nil {
		t.Fatalf("csv not written: %v", err)
	}
	if len(data) == 0 {
		t.Error("empty csv")
	}
}

func TestRunSweepWithReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "sweep.json")
	if err := run([]string{"-sweep", "-ns", "5,7", "-algos", "dac",
		"-advs", "complete,random:2,3", "-seeds", "4", "-workers", "2",
		"-report", out}); err != nil {
		t.Fatalf("sweep: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	var report sweepReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("report not valid JSON: %v", err)
	}
	// 2 sizes × 1 algorithm × 2 adversaries (random:2,3 spans the comma).
	if len(report.Cells) != 4 {
		t.Fatalf("%d cells, want 4", len(report.Cells))
	}
	if report.SeedsPerCell != 4 || report.Cells[0].Runs != 4 {
		t.Errorf("seeds per cell = %d, first cell runs = %d",
			report.SeedsPerCell, report.Cells[0].Runs)
	}
	if report.Cells[1].Adversary != "random:2,3" {
		t.Errorf("adversary label = %q", report.Cells[1].Adversary)
	}
}

func TestRunSweepBadAxes(t *testing.T) {
	for _, args := range [][]string{
		{"-sweep", "-ns", "x"},
		{"-sweep", "-algos", "paxos"},
		{"-sweep", "-advs", "warp"},
		{"-sweep", "-epss", "zz"},
	} {
		if err := run(args); err == nil {
			t.Errorf("%v accepted", args)
		}
	}
}
