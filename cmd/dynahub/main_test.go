package main

import (
	"strings"
	"sync"
	"testing"
	"time"

	"anondyn/internal/core"
	"anondyn/internal/transport"
)

// badAddr fails at listen time; since run parses the adversary before
// listening, a listen failure proves the grammar was accepted.
const badAddr = "256.256.256.256:99999"

func TestRunAcceptsRegistryGrammar(t *testing.T) {
	for _, spec := range []string{
		"complete", "halves", "chasemin", "isolate:0", "clustered:4",
		"rotating:3", "rotating:crashdeg", "starve:byzdeg", "starveperiod:3",
		"er:0.50", "er:0.3,42", "random:5,crashdeg,0.1,7",
	} {
		err := run([]string{"-adversary", spec, "-n", "5", "-f", "1", "-addr", badAddr})
		if err == nil || !strings.Contains(err.Error(), "listen") {
			t.Errorf("adversary %q: err = %v, want listen failure (grammar accepted)", spec, err)
		}
	}
	for _, bad := range []string{"rotating:x", "er:y", "clustered:", "mesh", "starveperiod:0", "isolate:v"} {
		err := run([]string{"-adversary", bad, "-addr", badAddr})
		if err == nil || strings.Contains(err.Error(), "listen") {
			t.Errorf("adversary %q accepted (err = %v)", bad, err)
		}
	}
}

func TestRunEnforcesFactoryCheck(t *testing.T) {
	// fig1 is defined on exactly 3 nodes; the factory's Check hook must
	// reject other sizes before the hub ever listens.
	err := run([]string{"-adversary", "fig1", "-n", "5", "-addr", badAddr})
	if err == nil || strings.Contains(err.Error(), "listen") {
		t.Errorf("fig1 with n=5: err = %v, want Check rejection", err)
	}
	err = run([]string{"-adversary", "fig1", "-n", "3", "-addr", badAddr})
	if err == nil || !strings.Contains(err.Error(), "listen") {
		t.Errorf("fig1 with n=3: err = %v, want listen failure (accepted)", err)
	}
	// isolate's victim bound is checked against -n the same way.
	err = run([]string{"-adversary", "isolate:7", "-n", "5", "-addr", badAddr})
	if err == nil || strings.Contains(err.Error(), "listen") {
		t.Errorf("isolate:7 with n=5: err = %v, want Check rejection", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-adversary", "bogus"}); err == nil {
		t.Error("bogus adversary accepted")
	}
	if err := run([]string{"-badflag"}); err == nil {
		t.Error("bad flag accepted")
	}
}

// TestRunEndToEnd drives the full hub CLI against real clients.
func TestRunEndToEnd(t *testing.T) {
	const addr = "127.0.0.1:17311"
	hubDone := make(chan error, 1)
	go func() {
		hubDone <- run([]string{"-n", "3", "-addr", addr, "-adversary", "rotating:1",
			"-timeout", "10s", "-randports"})
	}()
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = runClientRetry(addr, float64(i)/2)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	select {
	case err := <-hubDone:
		if err != nil {
			t.Fatalf("hub: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("hub did not finish")
	}
}

func runClientRetry(addr string, input float64) (*transport.ClientResult, error) {
	var lastErr error
	for i := 0; i < 100; i++ {
		res, err := transport.RunClient(addr, transport.ClientConfig{
			NewProcess: func(n, selfPort int) (core.Process, error) {
				return core.NewDAC(n, selfPort, input, 1e-2)
			},
			IOTimeout: 10 * time.Second,
		})
		if err == nil {
			return res, nil
		}
		lastErr = err
		time.Sleep(50 * time.Millisecond)
	}
	return nil, lastErr
}

func TestRunRejectsBadListen(t *testing.T) {
	err := run([]string{"-addr", "256.256.256.256:99999", "-n", "1"})
	if err == nil || !strings.Contains(err.Error(), "listen") {
		t.Errorf("err = %v, want listen failure", err)
	}
}
