package main

import (
	"strings"
	"sync"
	"testing"
	"time"

	"anondyn/internal/core"
	"anondyn/internal/transport"
)

func TestParseAdversary(t *testing.T) {
	cases := map[string]string{
		"complete":    "complete",
		"rotating:3":  "rotating(d=3)",
		"er:0.50":     "er(p=0.50)",
		"clustered:4": "clustered(T=4)",
	}
	for spec, want := range cases {
		a, err := parseAdversary(spec, 1)
		if err != nil {
			t.Errorf("parseAdversary(%q): %v", spec, err)
			continue
		}
		if a.Name() != want {
			t.Errorf("parseAdversary(%q).Name() = %q, want %q", spec, a.Name(), want)
		}
	}
	for _, bad := range []string{"rotating:x", "er:y", "clustered:", "mesh"} {
		if _, err := parseAdversary(bad, 1); err == nil {
			t.Errorf("parseAdversary(%q) accepted", bad)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-adversary", "bogus"}); err == nil {
		t.Error("bogus adversary accepted")
	}
	if err := run([]string{"-badflag"}); err == nil {
		t.Error("bad flag accepted")
	}
}

// TestRunEndToEnd drives the full hub CLI against real clients.
func TestRunEndToEnd(t *testing.T) {
	const addr = "127.0.0.1:17311"
	hubDone := make(chan error, 1)
	go func() {
		hubDone <- run([]string{"-n", "3", "-addr", addr, "-adversary", "rotating:1",
			"-timeout", "10s", "-randports"})
	}()
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = runClientRetry(addr, float64(i)/2)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	select {
	case err := <-hubDone:
		if err != nil {
			t.Fatalf("hub: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("hub did not finish")
	}
}

func runClientRetry(addr string, input float64) (*transport.ClientResult, error) {
	var lastErr error
	for i := 0; i < 100; i++ {
		res, err := transport.RunClient(addr, transport.ClientConfig{
			NewProcess: func(n, selfPort int) (core.Process, error) {
				return core.NewDAC(n, selfPort, input, 1e-2)
			},
			IOTimeout: 10 * time.Second,
		})
		if err == nil {
			return res, nil
		}
		lastErr = err
		time.Sleep(50 * time.Millisecond)
	}
	return nil, lastErr
}

func TestRunRejectsBadListen(t *testing.T) {
	err := run([]string{"-addr", "256.256.256.256:99999", "-n", "1"})
	if err == nil || !strings.Contains(err.Error(), "listen") {
		t.Errorf("err = %v, want listen failure", err)
	}
}
