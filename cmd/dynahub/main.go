// Command dynahub runs the round coordinator for a distributed
// execution: it stands in for the broadcast medium of §II-A, collecting
// every node's per-round broadcast, applying a configurable message
// adversary (the lab's radio environment), and delivering messages
// tagged with receiver-local ports.
//
// The -adversary grammar is the registry shared with dynabench and
// dynasim (anondyn.ParseAdversaryFactory): symbolic degrees
// (crashdeg/byzdeg, resolved against -n/-f), pinned seeds, and every
// registered adversary work identically in live runs and sweeps.
//
// Start a hub, then n dynanode processes:
//
//	dynahub  -n 5 -addr 127.0.0.1:7000 -adversary rotating:2
//	dynahub  -n 7 -adversary er:0.4,42 -f 3
//	dynanode -addr 127.0.0.1:7000 -input 0.2   # × 5, one per node
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"

	"anondyn"
	"anondyn/internal/metrics"
	"anondyn/internal/network"
	"anondyn/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dynahub:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dynahub", flag.ContinueOnError)
	var (
		n          = fs.Int("n", 5, "number of nodes to wait for")
		f          = fs.Int("f", 0, "fault bound for symbolic adversary degrees (crashdeg/byzdeg)")
		addr       = fs.String("addr", "127.0.0.1:7000", "listen address")
		advSpec    = fs.String("adversary", "complete", "adversary (complete | halves | chasemin | fig1 | isolate:<v> | rotating:<d> | clustered:<T> | starve:<d> | er:<p>[,<seed>] | random:<B>,<D>[,<extra>[,<seed>]] | starveperiod:<T>; degrees accept crashdeg/byzdeg) — the grammar shared with dynabench/dynasim")
		maxRounds  = fs.Int("rounds", 10000, "round budget")
		seed       = fs.Int64("seed", 1, "seed for randomized adversaries / ports")
		randPorts  = fs.Bool("randports", false, "random per-node port numberings")
		timeout    = fs.Duration("timeout", 30*time.Second, "per-node I/O timeout")
		metricsOut = fs.String("metrics", "", "stream live per-round metrics snapshots as NDJSON to this file or host:port address")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	coll, closeMetrics, err := metrics.Start(*metricsOut, 0)
	if err != nil {
		return err
	}
	defer closeMetrics() //nolint:errcheck // final snapshot write; fate shared with stdout
	// The live hub resolves its adversary through the same registry as
	// the sweep CLIs and the spec files — one grammar everywhere.
	factory, err := anondyn.ParseAdversaryFactory(*advSpec)
	if err != nil {
		return err
	}
	cell := anondyn.Cell{N: *n, F: *f}
	if factory.Check != nil {
		if err := factory.Check(cell); err != nil {
			return fmt.Errorf("adversary %q: %w", *advSpec, err)
		}
	}
	adv := factory.New(cell, *seed)
	var ports network.Ports
	if *randPorts {
		ports = network.RandomPorts(*n, rand.New(rand.NewSource(*seed)))
	}
	cfg := transport.HubConfig{
		N:         *n,
		Adversary: adv,
		Ports:     ports,
		MaxRounds: *maxRounds,
		IOTimeout: *timeout,
		Log: func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		},
	}
	if coll != nil {
		cfg.Metrics = coll
	}
	hub, err := transport.NewHub(*addr, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("hub listening on %s, waiting for %d nodes (adversary %s)\n", hub.Addr(), *n, adv.Name())
	res, err := hub.Serve()
	if err != nil {
		return err
	}
	fmt.Printf("execution finished: rounds=%d, all decided=%v\n", res.Rounds, res.Decided)
	ids := make([]int, 0, len(res.Outputs))
	for id := range res.Outputs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		fmt.Printf("  node %d decided %.8f in round %d\n", id, res.Outputs[id], res.DecideRound[id])
	}
	if len(res.Trace) > 0 {
		ff := make([]int, *n)
		for i := range ff {
			ff[i] = i
		}
		fmt.Printf("trace provided (1,D)-dynaDegree with D=%d\n", anondyn.MaxDynaDegree(res.Trace, ff, 1))
	}
	return nil
}
