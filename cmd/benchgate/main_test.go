package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const baselineText = `
goos: linux
BenchmarkEngineRound/n=25-4   	   50000	     25880 ns/op	     512 B/op	      98 allocs/op
BenchmarkEngineRound/n=25-4   	   50000	     26011 ns/op	     512 B/op	      98 allocs/op
BenchmarkEngineRound/n=25-4   	   50000	     25790 ns/op	     512 B/op	      98 allocs/op
BenchmarkEngineRoundCompiled-4	  100000	     20110 ns/op	     128 B/op	      20 allocs/op
BenchmarkEngineRoundCompiled-4	  100000	     20350 ns/op	     128 B/op	      20 allocs/op
PASS
`

func write(t *testing.T, dir, name, text string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGatePassesOnEqualRuns(t *testing.T) {
	dir := t.TempDir()
	base := write(t, dir, "base.txt", baselineText)
	// Same numbers, different GOMAXPROCS suffix: must still line up.
	fresh := write(t, dir, "new.txt", strings.ReplaceAll(baselineText, "-4", "-16"))
	if err := run([]string{"-baseline", base, "-new", fresh}, os.Stdout); err != nil {
		t.Fatalf("identical runs gated: %v", err)
	}
}

func TestGateFailsOnAllocRegression(t *testing.T) {
	dir := t.TempDir()
	base := write(t, dir, "base.txt", baselineText)
	fresh := write(t, dir, "new.txt", strings.ReplaceAll(baselineText, "98 allocs/op", "140 allocs/op"))
	if err := run([]string{"-baseline", base, "-new", fresh}, os.Stdout); err == nil {
		t.Fatal("alloc regression passed the gate")
	}
}

func TestGateFailsOnSeparatedNsRegression(t *testing.T) {
	dir := t.TempDir()
	base := write(t, dir, "base.txt", baselineText)
	fresh := write(t, dir, "new.txt", strings.NewReplacer(
		"25880 ns/op", "298880 ns/op",
		"26011 ns/op", "299011 ns/op",
		"25790 ns/op", "297790 ns/op",
	).Replace(baselineText))
	if err := run([]string{"-baseline", base, "-new", fresh}, os.Stdout); err == nil {
		t.Fatal("11x ns/op regression passed the gate")
	}
}

// TestGateToleratesMachineDelta: a uniformly 3x-slower machine must
// not trip the default cross-machine ns/op threshold.
func TestGateToleratesMachineDelta(t *testing.T) {
	dir := t.TempDir()
	base := write(t, dir, "base.txt", baselineText)
	fresh := write(t, dir, "new.txt", strings.NewReplacer(
		"25880 ns/op", "77640 ns/op",
		"26011 ns/op", "78033 ns/op",
		"25790 ns/op", "77370 ns/op",
		"20110 ns/op", "60330 ns/op",
		"20350 ns/op", "61050 ns/op",
	).Replace(baselineText))
	if err := run([]string{"-baseline", base, "-new", fresh}, os.Stdout); err != nil {
		t.Fatalf("3x machine delta gated: %v", err)
	}
}

func TestGateToleratesOverlappingNoise(t *testing.T) {
	dir := t.TempDir()
	base := write(t, dir, "base.txt", baselineText)
	// Median nominally over threshold but one new sample dips into the
	// baseline range: treated as noise, not regression.
	fresh := write(t, dir, "new.txt", strings.NewReplacer(
		"25880 ns/op", "955880 ns/op",
		"26011 ns/op", "956011 ns/op",
		"25790 ns/op", "25800 ns/op",
	).Replace(baselineText))
	if err := run([]string{"-baseline", base, "-new", fresh}, os.Stdout); err != nil {
		t.Fatalf("overlapping samples gated: %v", err)
	}
}

func TestGateRejectsVacuousComparison(t *testing.T) {
	dir := t.TempDir()
	base := write(t, dir, "base.txt", baselineText)
	fresh := write(t, dir, "new.txt", "BenchmarkSomethingElse-4 10 5 ns/op 0 allocs/op\n")
	if err := run([]string{"-baseline", base, "-new", fresh}, os.Stdout); err == nil {
		t.Fatal("gate with no common benchmarks passed")
	}
}

func TestGateBenchFilter(t *testing.T) {
	dir := t.TempDir()
	base := write(t, dir, "base.txt", baselineText)
	// Regress only the compiled benchmark, then gate only EngineRound/:
	// the filter must keep the job green.
	fresh := write(t, dir, "new.txt", strings.ReplaceAll(baselineText, "20 allocs/op", "80 allocs/op"))
	if err := run([]string{"-baseline", base, "-new", fresh, "-bench", "EngineRound/"}, os.Stdout); err != nil {
		t.Fatalf("filtered gate failed: %v", err)
	}
	if err := run([]string{"-baseline", base, "-new", fresh}, os.Stdout); err == nil {
		t.Fatal("unfiltered gate missed the compiled regression")
	}
}

// densityText carries the graph-density benchmark axis names (slashes,
// dots, equals signs) the gate must both parse and enforce coverage of.
const densityText = `
BenchmarkEngineRound/n=51-4          	    1000	     98372 ns/op	     36672 B/op	     152 allocs/op
BenchmarkEngineRound/n=51/p=0.1-4    	    1000	     29042 ns/op	     40176 B/op	     164 allocs/op
BenchmarkEngineRound/n=51/d=4-4      	    1000	      9417 ns/op	     33272 B/op	     158 allocs/op
PASS
`

func TestGateRequireSatisfied(t *testing.T) {
	dir := t.TempDir()
	base := write(t, dir, "base.txt", densityText)
	fresh := write(t, dir, "new.txt", densityText)
	err := run([]string{"-baseline", base, "-new", fresh,
		"-require", `EngineRound/n=51/p=0\.1, EngineRound/n=51/d=4`}, os.Stdout)
	if err != nil {
		t.Fatalf("satisfied -require rejected: %v", err)
	}
}

func TestGateRequireMissingBenchmark(t *testing.T) {
	dir := t.TempDir()
	base := write(t, dir, "base.txt", densityText)
	// The density axis vanished from the fresh run: coverage error.
	fresh := write(t, dir, "new.txt", strings.ReplaceAll(densityText, "/p=0.1", ""))
	err := run([]string{"-baseline", base, "-new", fresh,
		"-require", `EngineRound/n=51/p=0\.1`}, os.Stdout)
	if err == nil || !strings.Contains(err.Error(), "-require") {
		t.Fatalf("missing required benchmark not surfaced: %v", err)
	}
}

func TestGateRequireBadPattern(t *testing.T) {
	dir := t.TempDir()
	base := write(t, dir, "base.txt", densityText)
	fresh := write(t, dir, "new.txt", densityText)
	err := run([]string{"-baseline", base, "-new", fresh, "-require", "("}, os.Stdout)
	if err == nil || !strings.Contains(err.Error(), "-require") {
		t.Fatalf("invalid -require pattern not surfaced: %v", err)
	}
}

// TestAppendHistoryRoundTrip: two passing runs with distinct labels
// must accumulate into one ordered JSON history; the recorded values
// are the per-benchmark medians of the fresh run.
func TestAppendHistoryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	base := write(t, dir, "base.txt", baselineText)
	fresh := write(t, dir, "new.txt", baselineText)
	hist := filepath.Join(dir, "BENCH_engine.json")

	if err := run([]string{"-baseline", base, "-new", fresh,
		"-append", hist, "-label", "pr6"}, os.Stdout); err != nil {
		t.Fatalf("first append: %v", err)
	}
	if err := run([]string{"-baseline", base, "-new", fresh,
		"-append", hist, "-label", "pr7"}, os.Stdout); err != nil {
		t.Fatalf("second append: %v", err)
	}

	data, err := os.ReadFile(hist)
	if err != nil {
		t.Fatal(err)
	}
	var history []historyEntry
	if err := json.Unmarshal(data, &history); err != nil {
		t.Fatalf("history not valid JSON: %v\n%s", err, data)
	}
	if len(history) != 2 || history[0].Label != "pr6" || history[1].Label != "pr7" {
		t.Fatalf("history = %+v", history)
	}
	m, ok := history[0].Benchmarks["BenchmarkEngineRound/n=25"]
	if !ok {
		t.Fatalf("entry lacks the gated benchmark: %+v", history[0].Benchmarks)
	}
	if m.NsOp != 25880 || m.AllocsOp != 98 {
		t.Errorf("recorded medians = %+v, want ns_op 25880 allocs_op 98", m)
	}
}

// edgeText reports the custom ns/edge metric alongside the standard
// units, as BenchmarkEngineRound does via b.ReportMetric.
const edgeText = `
BenchmarkEngineRound/n=1025/p=8n-4   	     100	    368000 ns/op	        50.50 ns/edge	       0 B/op	       0 allocs/op
BenchmarkEngineRound/n=1025/p=8n-4   	     100	    369000 ns/op	        50.70 ns/edge	       0 B/op	       0 allocs/op
PASS
`

// TestAppendRecordsNsEdge: the ns/edge metric must land in the ledger,
// and a second append must print a delta line against the previous
// entry covering all three tracked units.
func TestAppendRecordsNsEdge(t *testing.T) {
	dir := t.TempDir()
	base := write(t, dir, "base.txt", edgeText)
	fresh := write(t, dir, "new.txt", edgeText)
	faster := write(t, dir, "faster.txt", strings.NewReplacer(
		"368000 ns/op", "340000 ns/op",
		"369000 ns/op", "341000 ns/op",
		"50.50 ns/edge", "46.60 ns/edge",
		"50.70 ns/edge", "46.80 ns/edge",
	).Replace(edgeText))
	hist := filepath.Join(dir, "hist.json")
	logPath := filepath.Join(dir, "log.txt")
	logFile, err := os.Create(logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer logFile.Close()

	if err := run([]string{"-baseline", base, "-new", fresh,
		"-append", hist, "-label", "pr6"}, logFile); err != nil {
		t.Fatalf("first append: %v", err)
	}
	if err := run([]string{"-baseline", base, "-new", faster,
		"-append", hist, "-label", "pr7"}, logFile); err != nil {
		t.Fatalf("second append: %v", err)
	}

	data, err := os.ReadFile(hist)
	if err != nil {
		t.Fatal(err)
	}
	var history []historyEntry
	if err := json.Unmarshal(data, &history); err != nil {
		t.Fatal(err)
	}
	m := history[0].Benchmarks["BenchmarkEngineRound/n=1025/p=8n"]
	if m.NsEdge < 50.59 || m.NsEdge > 50.61 {
		t.Errorf("recorded ns_edge = %v, want the median ≈50.6", m.NsEdge)
	}
	log, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`since "pr6"`, "ns/op", "allocs/op", "ns/edge", "%)"} {
		if !strings.Contains(string(log), want) {
			t.Errorf("append log lacks %q:\n%s", want, log)
		}
	}
}

// TestAppendRejectsDuplicateLabel: re-running CI for the same PR must
// not double-record the entry.
func TestAppendRejectsDuplicateLabel(t *testing.T) {
	dir := t.TempDir()
	base := write(t, dir, "base.txt", baselineText)
	fresh := write(t, dir, "new.txt", baselineText)
	hist := filepath.Join(dir, "hist.json")
	args := []string{"-baseline", base, "-new", fresh, "-append", hist, "-label", "pr6"}
	if err := run(args, os.Stdout); err != nil {
		t.Fatalf("first append: %v", err)
	}
	if err := run(args, os.Stdout); err == nil || !strings.Contains(err.Error(), "already recorded") {
		t.Fatalf("duplicate label not rejected: %v", err)
	}
}

// TestAppendRequiresLabel and skips recording on a failed gate: the
// history must only ever contain runs that passed.
func TestAppendGuards(t *testing.T) {
	dir := t.TempDir()
	base := write(t, dir, "base.txt", baselineText)
	fresh := write(t, dir, "new.txt", baselineText)
	hist := filepath.Join(dir, "hist.json")
	if err := run([]string{"-baseline", base, "-new", fresh, "-append", hist}, os.Stdout); err == nil {
		t.Fatal("-append without -label accepted")
	}
	regressed := write(t, dir, "bad.txt", strings.ReplaceAll(baselineText, "98 allocs/op", "140 allocs/op"))
	if err := run([]string{"-baseline", base, "-new", regressed,
		"-append", hist, "-label", "pr6"}, os.Stdout); err == nil {
		t.Fatal("regressed run passed")
	}
	if _, err := os.Stat(hist); !os.IsNotExist(err) {
		t.Error("failed or mislabeled runs wrote a history file")
	}
}

func TestParseBenchLine(t *testing.T) {
	name, metrics, ok := parseBenchLine("BenchmarkEngineRound/n=25-8   	   50000	     25880 ns/op	     512 B/op	      98 allocs/op")
	if !ok || name != "BenchmarkEngineRound/n=25" {
		t.Fatalf("parsed %q, %v", name, ok)
	}
	if metrics["ns/op"] != 25880 || metrics["allocs/op"] != 98 {
		t.Errorf("metrics = %v", metrics)
	}
	for _, junk := range []string{"", "PASS", "goos: linux", "ok  anondyn  1.2s"} {
		if _, _, ok := parseBenchLine(junk); ok {
			t.Errorf("parsed junk line %q", junk)
		}
	}
}

// TestGateVacuousErrorIsNotARegression: a name mismatch must read as
// a configuration error, not a phantom regression.
func TestGateVacuousErrorMessage(t *testing.T) {
	dir := t.TempDir()
	base := write(t, dir, "base.txt", baselineText)
	fresh := write(t, dir, "new.txt", "BenchmarkSomethingElse-4 10 5 ns/op 0 allocs/op\n")
	err := run([]string{"-baseline", base, "-new", fresh}, os.Stdout)
	if err == nil || !strings.Contains(err.Error(), "no common benchmarks") {
		t.Fatalf("vacuous gate error = %v, want a configuration error", err)
	}
}
