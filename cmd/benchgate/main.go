// Command benchgate is the CI bench-regression gate: it compares two
// Go benchmark output files (the checked-in bench/baseline.txt against
// a fresh run) and fails when a benchmark regressed beyond the
// configured thresholds.
//
// allocs/op is the load-bearing signal — allocation counts are
// deterministic and machine-independent, so the default threshold is
// tight (2%). ns/op depends on the hardware the baseline was recorded
// on, so its default threshold is deliberately loose (fail only beyond
// 5× the baseline median): it catches order-of-magnitude slowdowns,
// not machine differences or microarchitecture noise. A
// regression must also be statistically separated (every new sample
// worse than every baseline sample) before the gate fires, so a single
// noisy run cannot fail the job.
//
// Usage:
//
//	go test -run '^$' -bench EngineRound -benchmem -count=5 . > new.txt
//	benchgate -baseline bench/baseline.txt -new new.txt
//
// With -append (and a mandatory -label), a run that passes the gate is
// also recorded: the gated benchmarks' ns/op, allocs/op, and (where
// reported) ns/edge medians are appended as one labeled entry to a
// committed JSON history file (bench/BENCH_engine.json), giving the
// repo a per-PR performance ledger that survives baseline refreshes.
// Each append also prints one delta line per benchmark against the
// previous ledger entry, so the recorded trajectory is visible in the
// CI log:
//
//	benchgate -baseline bench/baseline.txt -new new.txt \
//	    -append bench/BENCH_engine.json -label pr7
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	var (
		baselinePath = fs.String("baseline", "bench/baseline.txt", "checked-in baseline benchmark output")
		newPath      = fs.String("new", "", "freshly recorded benchmark output to gate")
		nsThreshold  = fs.Float64("ns-threshold", 4.0, "maximum tolerated ns/op regression (fraction; 4.0 = fail beyond 5× — cross-machine baselines need order-of-magnitude slack)")
		allocsLimit  = fs.Float64("alloc-threshold", 0.02, "maximum tolerated allocs/op regression (fraction; allocation counts are machine-independent)")
		filter       = fs.String("bench", "", "regexp limiting which benchmarks are gated (default: all common ones)")
		require      = fs.String("require", "", "comma-separated regexps that must each match at least one gated benchmark (guards against silently dropped or renamed benchmarks)")
		appendPath   = fs.String("append", "", "JSON history file to append the gated medians of a passing run to (requires -label)")
		label        = fs.String("label", "", "entry label for -append, e.g. a PR number or commit; duplicate labels are rejected")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *newPath == "" {
		return fmt.Errorf("-new is required")
	}
	baseline, err := parseBenchFile(*baselinePath)
	if err != nil {
		return err
	}
	fresh, err := parseBenchFile(*newPath)
	if err != nil {
		return err
	}
	var re *regexp.Regexp
	if *filter != "" {
		if re, err = regexp.Compile(*filter); err != nil {
			return fmt.Errorf("-bench: %w", err)
		}
	}
	gated, err := commonNames(baseline, fresh, re)
	if err != nil {
		return err
	}
	if err := checkRequired(gated, *require); err != nil {
		return err
	}
	regressions, err := gate(baseline, fresh, gated, thresholds{ns: *nsThreshold, allocs: *allocsLimit}, out)
	if err != nil {
		return err
	}
	if regressions > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond the threshold", regressions)
	}
	if *appendPath != "" {
		if *label == "" {
			return fmt.Errorf("-append requires -label")
		}
		if err := appendHistory(*appendPath, *label, fresh, gated, out); err != nil {
			return err
		}
		fmt.Fprintf(out, "recorded %d benchmark(s) as %q in %s\n", len(gated), *label, *appendPath)
	}
	return nil
}

// historyEntry is one -append record: the gated benchmarks' medians for
// one labeled run. The committed history is an append-only JSON array —
// each PR that refreshes the baseline adds one entry, so the trajectory
// stays reconstructible even though baseline.txt itself is overwritten.
type historyEntry struct {
	Label      string                   `json:"label"`
	Benchmarks map[string]historyMetric `json:"benchmarks"`
}

type historyMetric struct {
	NsOp     float64 `json:"ns_op"`
	AllocsOp float64 `json:"allocs_op"`
	NsEdge   float64 `json:"ns_edge,omitempty"`
}

// appendHistory loads the history file (absent means empty), rejects a
// duplicate label (re-running CI on the same PR must not double-record),
// prints per-benchmark deltas against the previous entry, and writes
// the extended array back.
func appendHistory(path, label string, fresh samples, names []string, out *os.File) error {
	var history []historyEntry
	data, err := os.ReadFile(path)
	switch {
	case errors.Is(err, fs.ErrNotExist):
		// first entry: start a fresh history
	case err != nil:
		return err
	default:
		if err := json.Unmarshal(data, &history); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	for _, e := range history {
		if e.Label == label {
			return fmt.Errorf("%s: label %q already recorded", path, label)
		}
	}
	entry := historyEntry{Label: label, Benchmarks: map[string]historyMetric{}}
	for _, name := range names {
		var m historyMetric
		if xs := fresh[name]["ns/op"]; len(xs) > 0 {
			m.NsOp = median(xs)
		}
		if xs := fresh[name]["allocs/op"]; len(xs) > 0 {
			m.AllocsOp = median(xs)
		}
		if xs := fresh[name]["ns/edge"]; len(xs) > 0 {
			m.NsEdge = median(xs)
		}
		entry.Benchmarks[name] = m
	}
	if len(history) > 0 {
		printHistoryDeltas(out, history[len(history)-1], entry)
	}
	history = append(history, entry)
	blob, err := json.MarshalIndent(history, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// printHistoryDeltas reports, for every benchmark recorded in both the
// previous ledger entry and the new one, how each tracked metric moved.
// The gate's verdict lines compare against baseline.txt, which is
// overwritten on refresh; these lines compare against the last
// *recorded* entry, so the ledger's own trajectory is visible in the
// log that appends to it.
func printHistoryDeltas(out *os.File, prev, next historyEntry) {
	names := make([]string, 0, len(next.Benchmarks))
	for name := range next.Benchmarks {
		if _, ok := prev.Benchmarks[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		p, n := prev.Benchmarks[name], next.Benchmarks[name]
		fmt.Fprintf(out, "since %q %-50s %s  %s  %s\n", prev.Label, name,
			deltaField("ns/op", p.NsOp, n.NsOp),
			deltaField("allocs/op", p.AllocsOp, n.AllocsOp),
			deltaField("ns/edge", p.NsEdge, n.NsEdge))
	}
}

// deltaField formats one metric's movement. ns-valued metrics are never
// legitimately 0, so a zero there means the unit was unrecorded on that
// side (ns/edge predates the pr7 entries) and renders as a placeholder.
// allocs/op, by contrast, is genuinely 0 for the steady-round
// benchmarks, so zeros are compared like any other value.
func deltaField(unit string, prev, next float64) string {
	if unit != "allocs/op" && (prev == 0 || next == 0) {
		return unit + " –"
	}
	switch {
	case prev == next:
		return fmt.Sprintf("%s %.5g (=)", unit, next)
	case prev == 0:
		return fmt.Sprintf("%s %.5g → %.5g", unit, prev, next)
	default:
		return fmt.Sprintf("%s %.5g → %.5g (%+.1f%%)", unit, prev, next, 100*(next-prev)/prev)
	}
}

// checkRequired verifies the -require coverage patterns: a gate whose
// key benchmarks vanished (renamed axis, dropped density case) must
// fail loudly as a configuration error rather than pass vacuously on
// whatever benchmarks remain.
func checkRequired(names []string, require string) error {
	for _, pat := range strings.Split(require, ",") {
		pat = strings.TrimSpace(pat)
		if pat == "" {
			continue
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			return fmt.Errorf("-require %q: %w", pat, err)
		}
		found := false
		for _, name := range names {
			if re.MatchString(name) {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("-require %q matches no gated benchmark (renamed or missing from baseline/new output?)", pat)
		}
	}
	return nil
}

// thresholds are the tolerated regression fractions per metric.
type thresholds struct {
	ns     float64
	allocs float64
}

// samples maps benchmark name → metric unit → recorded values.
type samples map[string]map[string][]float64

// gatedUnits are the metrics the gate enforces.
func (t thresholds) forUnit(unit string) (float64, bool) {
	switch unit {
	case "ns/op":
		return t.ns, true
	case "allocs/op":
		return t.allocs, true
	}
	return 0, false
}

// commonNames lists the benchmarks present in both files (and passing
// the filter), sorted. A comparison with no common benchmarks is a
// configuration error, not a regression.
func commonNames(baseline, fresh samples, filter *regexp.Regexp) ([]string, error) {
	var names []string
	for name := range baseline {
		if _, ok := fresh[name]; ok && (filter == nil || filter.MatchString(name)) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		// A vacuous gate is a misconfigured gate: renamed benchmarks or
		// a filter matching nothing, never a performance problem.
		return nil, fmt.Errorf("no common benchmarks between baseline and new output (renamed benchmark or over-narrow -bench filter?)")
	}
	return names, nil
}

// gate compares the listed benchmarks and prints one verdict line per
// gated metric, returning the number of regressions.
func gate(baseline, fresh samples, names []string, t thresholds, out *os.File) (int, error) {
	regressions := 0
	for _, name := range names {
		for _, unit := range []string{"ns/op", "allocs/op"} {
			threshold, gated := t.forUnit(unit)
			if !gated {
				continue
			}
			base, fresh := baseline[name][unit], fresh[name][unit]
			if len(base) == 0 || len(fresh) == 0 {
				continue
			}
			verdict := compare(base, fresh, threshold)
			fmt.Fprintf(out, "%-60s %-10s %12.1f → %12.1f   %s\n",
				name, unit, median(base), median(fresh), verdict)
			if verdict == "REGRESSED" {
				regressions++
			}
		}
	}
	return regressions, nil
}

// compare applies the gate rule to one metric: the new median must
// exceed the baseline median by more than the threshold AND the sample
// ranges must be separated (min(new) > max(base)) for a regression
// call — overlap means noise, not signal.
func compare(base, fresh []float64, threshold float64) string {
	mb, mf := median(base), median(fresh)
	if mf <= mb*(1+threshold) {
		return "ok"
	}
	if minOf(fresh) <= maxOf(base) {
		return "ok (within noise)"
	}
	return "REGRESSED"
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// parseBenchFile reads Go benchmark output.
func parseBenchFile(path string) (samples, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s := samples{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		name, metrics, ok := parseBenchLine(sc.Text())
		if !ok {
			continue
		}
		byUnit := s[name]
		if byUnit == nil {
			byUnit = map[string][]float64{}
			s[name] = byUnit
		}
		for unit, value := range metrics {
			byUnit[unit] = append(byUnit[unit], value)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(s) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines", path)
	}
	return s, nil
}

// procSuffix strips the trailing -<GOMAXPROCS> so baselines recorded
// on machines with different core counts still line up.
var procSuffix = regexp.MustCompile(`-\d+$`)

// parseBenchLine parses one "BenchmarkX-8  N  v unit  v unit …" line.
func parseBenchLine(line string) (string, map[string]float64, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", nil, false
	}
	name := procSuffix.ReplaceAllString(fields[0], "")
	metrics := map[string]float64{}
	for i := 2; i+1 < len(fields); i += 2 {
		value, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		metrics[fields[i+1]] = value
	}
	if len(metrics) == 0 {
		return "", nil, false
	}
	return name, metrics, true
}
