package main

import (
	"os"
	"path/filepath"
	"testing"

	"anondyn"
	"anondyn/internal/trace"
)

// writeTestTrace records a small run and writes it as JSONL.
func writeTestTrace(t *testing.T) string {
	t.Helper()
	rec := anondyn.NewRecorder()
	_, err := anondyn.Scenario{
		N: 5, F: 1, Eps: 0.01,
		Algorithm: anondyn.AlgoDAC,
		Inputs:    anondyn.SpreadInputs(5),
		Adversary: anondyn.Rotating(2),
		Crashes:   map[int]anondyn.Crash{1: anondyn.CrashAt(2)},
		Recorder:  rec,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteJSONL(f, rec.Events()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSummary(t *testing.T) {
	path := writeTestTrace(t)
	if err := run([]string{"-n", "5", path}, os.Stdout); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunEventDump(t *testing.T) {
	path := writeTestTrace(t)
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	if err := run([]string{"-n", "5", "-events", path}, devnull); err != nil {
		t.Fatalf("run -events: %v", err)
	}
}

func TestRunValidation(t *testing.T) {
	path := writeTestTrace(t)
	if err := run([]string{path}, os.Stdout); err == nil {
		t.Error("missing -n accepted")
	}
	if err := run([]string{"-n", "5"}, os.Stdout); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{"-n", "5", "/does/not/exist.jsonl"}, os.Stdout); err == nil {
		t.Error("missing file path accepted")
	}
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-n", "5", empty}, os.Stdout); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestSummarize(t *testing.T) {
	events := []trace.Event{
		{Kind: trace.KindRound, Round: 0},
		{Kind: trace.KindBroadcast, Round: 0, Node: 0},
		{Kind: trace.KindDeliver, Round: 0, Node: 1},
		{Kind: trace.KindPhase, Round: 0, Node: 1, Phase: 1},
		{Kind: trace.KindCrash, Round: 1, Node: 2},
		{Kind: trace.KindDecide, Round: 3, Node: 1, Value: 0.5},
		{Kind: trace.KindDecide, Round: 5, Node: 0, Value: 0.5},
	}
	s := summarize(events)
	if s.rounds != 1 || s.broadcasts != 1 || s.deliveries != 1 || s.phases != 1 {
		t.Errorf("summary = %+v", s)
	}
	if len(s.crashes) != 1 || s.crashes[0] != 2 {
		t.Errorf("crashes = %v", s.crashes)
	}
	if len(s.decides) != 2 || s.firstDecide != 3 || s.lastDecide != 5 {
		t.Errorf("decides = %v first %d last %d", s.decides, s.firstDecide, s.lastDecide)
	}
}
