// Command dynatrace inspects a recorded execution log (the JSONL files
// dynasim -trace writes): it summarizes the run, reconstructs the
// dynamic graph, reports which (T, D)-dynaDegree the adversary actually
// provided, and checks the prior stability properties of §II-B for
// comparison.
//
//	dynasim   -algo dac -n 7 -adversary rotating:3 -trace run.jsonl
//	dynatrace -n 7 run.jsonl
//	dynatrace -n 7 -events run.jsonl     # dump the event log
package main

import (
	"flag"
	"fmt"
	"os"

	"anondyn/internal/network"
	"anondyn/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dynatrace:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("dynatrace", flag.ContinueOnError)
	var (
		n          = fs.Int("n", 0, "network size (required)")
		dumpEvents = fs.Bool("events", false, "dump every event in human-readable form")
		maxT       = fs.Int("maxt", 8, "largest window T to analyze")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: dynatrace -n <size> [flags] <trace.jsonl>")
	}
	if *n < 1 {
		return fmt.Errorf("-n is required and must be ≥ 1")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := trace.ReadJSONL(f)
	if err != nil {
		return err
	}
	if len(events) == 0 {
		return fmt.Errorf("empty trace")
	}

	if *dumpEvents {
		for _, e := range events {
			fmt.Fprintln(out, trace.Describe(e))
		}
		return nil
	}

	summary := summarize(events)
	fmt.Fprintf(out, "events: %d  rounds: %d\n", len(events), summary.rounds)
	fmt.Fprintf(out, "broadcasts: %d  deliveries: %d  phase transitions: %d\n",
		summary.broadcasts, summary.deliveries, summary.phases)
	if len(summary.crashes) > 0 {
		fmt.Fprintf(out, "crashes: %v\n", summary.crashes)
	}
	if len(summary.decides) > 0 {
		fmt.Fprintf(out, "decisions: %d nodes, first round %d, last round %d\n",
			len(summary.decides), summary.firstDecide, summary.lastDecide)
	} else {
		fmt.Fprintln(out, "decisions: none recorded")
	}

	replay, err := trace.NewReplay(*n, events)
	if err != nil {
		return err
	}
	tr := replay.Trace()
	ff := make([]int, *n)
	for i := range ff {
		ff[i] = i
	}
	fmt.Fprintf(out, "\ndynaDegree analysis over %d recorded rounds (all nodes treated fault-free):\n", len(tr))
	for t := 1; t <= *maxT && t <= len(tr); t *= 2 {
		fmt.Fprintf(out, "  (T=%d, D=%d)-dynaDegree\n", t, network.MaxDynaDegree(tr, ff, t))
	}
	fmt.Fprintf(out, "\nprior properties (§II-B):\n")
	fmt.Fprintf(out, "  rooted spanning tree every round: %v\n", network.EveryRoundRooted(tr))
	fmt.Fprintf(out, "  1-interval connectivity: %v\n", network.TIntervalConnected(tr, 1))
	return nil
}

type traceSummary struct {
	rounds      int
	broadcasts  int
	deliveries  int
	phases      int
	crashes     []int
	decides     map[int]float64
	firstDecide int
	lastDecide  int
}

func summarize(events []trace.Event) traceSummary {
	s := traceSummary{decides: make(map[int]float64), firstDecide: -1}
	for _, e := range events {
		switch e.Kind {
		case trace.KindRound:
			s.rounds++
		case trace.KindBroadcast:
			s.broadcasts++
		case trace.KindDeliver:
			s.deliveries++
		case trace.KindPhase:
			s.phases++
		case trace.KindCrash:
			s.crashes = append(s.crashes, e.Node)
		case trace.KindDecide:
			s.decides[e.Node] = e.Value
			if s.firstDecide < 0 || e.Round < s.firstDecide {
				s.firstDecide = e.Round
			}
			if e.Round > s.lastDecide {
				s.lastDecide = e.Round
			}
		}
	}
	return s
}
