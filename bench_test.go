package anondyn_test

// The benchmark harness: one BenchmarkE<k> per experiment table in
// EXPERIMENTS.md (run them with `go test -bench=E -benchmem`), plus
// micro-benchmarks of the substrate (engine round throughput, wire
// codec, dynaDegree checking). Each experiment bench regenerates the
// full table per iteration, so ns/op is the cost of reproducing that
// table.

import (
	"fmt"
	"runtime"
	"testing"

	"anondyn"
	"anondyn/internal/core"
	"anondyn/internal/experiments"
	"anondyn/internal/metrics"
	"anondyn/internal/sim"
)

func benchExperiment(b *testing.B, run func() interface{ Rows() int }) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb := run()
		if tb.Rows() == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE1DACConvergence(b *testing.B) {
	benchExperiment(b, func() interface{ Rows() int } { return experiments.E1DACConvergence() })
}

func BenchmarkE2CrashDegreeNecessity(b *testing.B) {
	benchExperiment(b, func() interface{ Rows() int } { return experiments.E2CrashDegreeNecessity() })
}

func BenchmarkE3CrashResilienceBoundary(b *testing.B) {
	benchExperiment(b, func() interface{ Rows() int } { return experiments.E3CrashResilienceBoundary() })
}

func BenchmarkE4RoundsVsT(b *testing.B) {
	benchExperiment(b, func() interface{ Rows() int } { return experiments.E4RoundsVsT() })
}

func BenchmarkE5DBACConvergence(b *testing.B) {
	benchExperiment(b, func() interface{ Rows() int } { return experiments.E5DBACConvergence() })
}

func BenchmarkE6ByzantineNecessity(b *testing.B) {
	benchExperiment(b, func() interface{ Rows() int } { return experiments.E6ByzantineNecessity() })
}

func BenchmarkE7Baselines(b *testing.B) {
	benchExperiment(b, func() interface{ Rows() int } { return experiments.E7Baselines() })
}

func BenchmarkE8BandwidthTradeoff(b *testing.B) {
	benchExperiment(b, func() interface{ Rows() int } { return experiments.E8BandwidthTradeoff() })
}

func BenchmarkE9ExactImpossibility(b *testing.B) {
	benchExperiment(b, func() interface{ Rows() int } { return experiments.E9ExactImpossibility() })
}

func BenchmarkE10ProbabilisticRounds(b *testing.B) {
	benchExperiment(b, func() interface{ Rows() int } { return experiments.E10ProbabilisticRounds() })
}

func BenchmarkE11BandwidthCaps(b *testing.B) {
	benchExperiment(b, func() interface{ Rows() int } { return experiments.E11BandwidthCaps() })
}

func BenchmarkE12JumpAblation(b *testing.B) {
	benchExperiment(b, func() interface{ Rows() int } { return experiments.E12JumpAblation() })
}

func BenchmarkE13RateProbe(b *testing.B) {
	benchExperiment(b, func() interface{ Rows() int } { return experiments.E13RateProbe() })
}

func BenchmarkF1ConvergenceCurves(b *testing.B) {
	benchExperiment(b, func() interface{ Rows() int } { return experiments.F1ConvergenceCurves() })
}

// BenchmarkRunManyParallel measures the worker-pool batch harness on a
// 1000-seed DAC Monte-Carlo batch against the sequential baseline
// (workers=1). The per-seed results are identical by construction; the
// ratio of the two ns/op figures is the parallel speedup.
func BenchmarkRunManyParallel(b *testing.B) {
	const batch = 1000
	family := func(seed int64) anondyn.Scenario {
		return anondyn.Scenario{
			N: 9, F: 2, Eps: 1e-3,
			Algorithm: anondyn.AlgoDAC,
			Inputs:    anondyn.RandomInputs(9, seed),
			Adversary: anondyn.Probabilistic(0.5, seed),
			Seed:      seed,
			MaxRounds: 5000,
		}
	}
	pools := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		pools = append(pools, n)
	}
	for _, workers := range pools {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				stats := &anondyn.BatchStats{Eps: 1e-3}
				err := anondyn.RunManyStream(anondyn.Seeds(batch, 0), family, stats,
					anondyn.BatchOptions{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if stats.Runs() != batch {
					b.Fatalf("streamed %d runs", stats.Runs())
				}
			}
		})
	}
}

// BenchmarkRunManyCompiled measures the fully recycled batch path —
// engine, views and DAC processes built once per worker — on the same
// 1000-seed workload as BenchmarkRunManyParallel. The allocs/op gap
// between the two benchmarks is the per-seed construction tax the
// compile-once API removes.
func BenchmarkRunManyCompiled(b *testing.B) {
	const batch = 1000
	family := func() anondyn.Scenario {
		return anondyn.Scenario{
			N: 9, F: 2, Eps: 1e-3,
			Algorithm: anondyn.AlgoDAC,
			Inputs:    anondyn.RandomInputs(9, 0),
			Adversary: anondyn.Probabilistic(0.5, 0),
			MaxRounds: 5000,
		}
	}
	inputs := func(seed int64) []float64 { return anondyn.RandomInputs(9, seed) }
	pools := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		pools = append(pools, n)
	}
	for _, workers := range pools {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				stats := &anondyn.BatchStats{Eps: 1e-3}
				err := anondyn.RunManyCompiled(family, anondyn.Seeds(batch, 0), inputs, stats,
					anondyn.BatchOptions{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if stats.Runs() != batch {
					b.Fatalf("streamed %d runs", stats.Runs())
				}
			}
		})
	}
}

// Substrate micro-benchmarks.

// steadyProcs builds n never-deciding DAC processes (huge phase
// budget), so every engine Step over them is a steady-state round.
func steadyProcs(tb testing.TB, n int) []core.Process {
	tb.Helper()
	procs := make([]core.Process, n)
	for i := 0; i < n; i++ {
		d, err := core.NewDACPhases(n, i, 1<<20, float64(i)/float64(n-1))
		if err != nil {
			tb.Fatal(err)
		}
		procs[i] = d
	}
	return procs
}

// steadyEngine builds a sequential engine that never decides; opts
// tweak the Config (CSR scratch, parallel rounds) before construction.
func steadyEngine(tb testing.TB, n int, adv anondyn.Adversary, opts ...func(*sim.Config)) *sim.Engine {
	tb.Helper()
	cfg := sim.Config{
		N:         n,
		Procs:     steadyProcs(tb, n),
		Adversary: adv,
		MaxRounds: 1 << 30,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	eng, err := sim.NewEngine(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	eng.RunRounds(32) // warm the delivery scratch
	return eng
}

// steadyAdversaries are the adversaries the zero-allocation budget is
// asserted on: the benign complete graph, the §VII probabilistic
// adversary (the Monte-Carlo workhorse) at two densities, and a sparse
// rotating regular graph — the graph family whose delivery cost should
// scale with in-degree, not n.
func steadyAdversaries() map[string]func() anondyn.Adversary {
	return map[string]func() anondyn.Adversary{
		"complete": func() anondyn.Adversary { return anondyn.Complete() },
		"er":       func() anondyn.Adversary { return anondyn.Probabilistic(0.5, 1) },
		"er10":     func() anondyn.Adversary { return anondyn.Probabilistic(0.1, 1) },
		"d4":       func() anondyn.Adversary { return anondyn.Rotating(4) },
	}
}

// TestSteadyRoundAllocBudget is the PR's allocation budget, enforced:
// a steady-state DAC engine round performs ZERO heap allocations, on
// both the complete-graph and probabilistic adversaries. Any regression
// in the engine hot loop, the adversary fast paths, or the edge-set
// scratch shows up here as a hard failure.
func TestSteadyRoundAllocBudget(t *testing.T) {
	for name, mk := range steadyAdversaries() {
		t.Run(name, func(t *testing.T) {
			eng := steadyEngine(t, 9, mk())
			if avg := testing.AllocsPerRun(200, eng.Step); avg != 0 {
				t.Errorf("steady-state round allocated %g times per round, want 0", avg)
			}
		})
	}
	// The budget holds at sparse scale too: the n=1025 geometric-skip
	// rounds must not regrow the delivery scratch when a late round sees
	// a record in-degree (the scratch is sized to the n−1 maximum up
	// front), and the skipped view refresh must not be replaced by
	// anything that allocates.
	t.Run("er2/n=1025", func(t *testing.T) {
		eng := steadyEngine(t, 1025, anondyn.SparseProbabilistic(8.0/1025, 1))
		if avg := testing.AllocsPerRun(50, eng.Step); avg != 0 {
			t.Errorf("steady-state sparse round allocated %g times per round, want 0", avg)
		}
	})
	// The CSR round core keeps the budget: the forced-sparse scratch
	// (mutation log, CSR arrays, the sender-major scatter buffer) must
	// absorb record-edge rounds through its headroom, never by
	// reallocating in the steady state.
	t.Run("er2/n=1025/csr", func(t *testing.T) {
		eng := steadyEngine(t, 1025, anondyn.SparseProbabilistic(8.0/1025, 1),
			func(cfg *sim.Config) { cfg.ForceCSR = true })
		if avg := testing.AllocsPerRun(50, eng.Step); avg != 0 {
			t.Errorf("steady-state CSR round allocated %g times per round, want 0", avg)
		}
	})
	// Past the size threshold the CSR representation is automatic.
	t.Run("er2/n=4097", func(t *testing.T) {
		eng := steadyEngine(t, 4097, anondyn.SparseProbabilistic(8.0/4097, 1))
		if avg := testing.AllocsPerRun(30, eng.Step); avg != 0 {
			t.Errorf("steady-state auto-CSR round allocated %g times per round, want 0", avg)
		}
	})
	// Receiver-parallel rounds reuse the persistent pool and per-worker
	// scratch; the steady state stays allocation-free on both
	// representations.
	for _, sub := range []struct {
		name string
		csr  bool
	}{{"par/n=1025", false}, {"par/n=1025/csr", true}} {
		t.Run(sub.name, func(t *testing.T) {
			eng := steadyEngine(t, 1025, anondyn.SparseProbabilistic(8.0/1025, 1),
				func(cfg *sim.Config) { cfg.RoundWorkers = 2; cfg.ForceCSR = sub.csr })
			defer eng.Close()
			if avg := testing.AllocsPerRun(50, eng.Step); avg != 0 {
				t.Errorf("steady-state parallel round allocated %g times per round, want 0", avg)
			}
		})
	}
	// The concurrent engine rides the same scratch discipline: after
	// warmup its per-round buffers (delivery slices, reply slots, worker
	// transition buffers) are all recycled and the channel barriers run
	// off runtime caches, so its steady rounds are allocation-free too.
	// A regression that rebuilds any per-node buffer per round adds
	// Θ(n) allocations and trips this hard at n=25.
	t.Run("concurrent/n=25", func(t *testing.T) {
		eng := steadyConcurrentEngine(t, 25, anondyn.Complete())
		defer eng.Close()
		if avg := testing.AllocsPerRun(100, eng.Step); avg != 0 {
			t.Errorf("steady-state concurrent round allocated %g times per round, want 0", avg)
		}
	})
}

// TestSteadyRoundAllocBudgetMetrics holds the same budget with a live
// Collector attached: the engine's emitRound builds its RoundSample on
// the stack and the Collector's hot path is all atomics, so enabling
// metrics must not add a single amortized allocation to the steady
// round — on the dense path, the forced-CSR path, and receiver-parallel
// rounds alike.
func TestSteadyRoundAllocBudgetMetrics(t *testing.T) {
	attach := func(coll *metrics.Collector) func(*sim.Config) {
		return func(cfg *sim.Config) { cfg.Hooks.Metrics = coll }
	}
	for name, mk := range steadyAdversaries() {
		t.Run(name, func(t *testing.T) {
			coll := metrics.NewCollector()
			eng := steadyEngine(t, 9, mk(), attach(coll))
			if avg := testing.AllocsPerRun(200, eng.Step); avg != 0 {
				t.Errorf("metrics-enabled round allocated %g times per round, want 0", avg)
			}
			if snap := coll.Snapshot(); snap.Rounds == 0 {
				t.Error("collector saw no rounds")
			}
		})
	}
	for _, sub := range []struct {
		name    string
		csr     bool
		workers int
	}{{"er2/n=1025/csr", true, 0}, {"er2/n=1025/par", false, 2}} {
		t.Run(sub.name, func(t *testing.T) {
			coll := metrics.NewCollector()
			eng := steadyEngine(t, 1025, anondyn.SparseProbabilistic(8.0/1025, 1),
				func(cfg *sim.Config) { cfg.ForceCSR = sub.csr; cfg.RoundWorkers = sub.workers },
				attach(coll))
			defer eng.Close()
			if avg := testing.AllocsPerRun(50, eng.Step); avg != 0 {
				t.Errorf("metrics-enabled round allocated %g times per round, want 0", avg)
			}
			if snap := coll.Snapshot(); snap.Rounds == 0 || snap.Delivered == 0 {
				t.Errorf("collector saw nothing: rounds=%d delivered=%d", snap.Rounds, snap.Delivered)
			}
		})
	}
}

// steadyConcurrentEngine mirrors steadyEngine for the goroutine-per-
// node engine: never-deciding processes, warmed scratch.
func steadyConcurrentEngine(tb testing.TB, n int, adv anondyn.Adversary) *sim.ConcurrentEngine {
	tb.Helper()
	eng, err := sim.NewConcurrentEngine(sim.Config{
		N:         n,
		Procs:     steadyProcs(tb, n),
		Adversary: adv,
		MaxRounds: 1 << 30,
	})
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < 32; i++ { // warm the per-receiver delivery buffers
		eng.Step()
	}
	return eng
}

// BenchmarkEngineSteadyRound measures one steady-state round in
// isolation (no run setup, no decisions) — the purest view of the
// round-loop cost. Expect 0 allocs/op.
func BenchmarkEngineSteadyRound(b *testing.B) {
	for name, mk := range steadyAdversaries() {
		for _, n := range []int{9, 25, 51} {
			b.Run(fmt.Sprintf("%s/n=%d", name, n), func(b *testing.B) {
				eng := steadyEngine(b, n, mk())
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					eng.Step()
				}
			})
		}
	}
}

// engineRoundCases is the BenchmarkEngineRound grid: the historical
// size axis on the complete graph plus a graph-density axis — at n=51
// (Erdős–Rényi at two densities, a d-regular rotating graph), at
// n=1025 and n=4097 with ~8 expected in-links per node (er2, the
// geometric-skip sparse sampler) and a rotating d=4 graph, and the CSR
// regime at n=16385 and n=65537 where the per-round graph lives in
// sparse CSR form and the round loop scatters sender-major into
// DeliverAll slices. The density axis is what shows round cost scaling
// with edges rather than n²: ns/edge must stay roughly flat from
// n=1025 to n=65537 (an n²-proportional round loop would grow it
// 64×). Rows above the convergence horizon cap their round budget — a
// few hundred steady rounds measure the per-round cost; running DAC to
// decision at n=65537 would add minutes without changing the metric.
// The /par rows shard the receiver loop across GOMAXPROCS workers
// (equal to the sequential rows on a single-core runner; their ratio
// on multi-core CI is the parallel speedup).
func engineRoundCases() []struct {
	name      string
	n         int
	maxRounds int // 0: run to decision
	workers   int // Scenario.RoundWorkers
	adv       func() anondyn.Adversary
} {
	complete := func() anondyn.Adversary { return anondyn.Complete() }
	er2 := func(n int) func() anondyn.Adversary {
		return func() anondyn.Adversary { return anondyn.SparseProbabilistic(8.0/float64(n), 1) }
	}
	d4 := func() anondyn.Adversary { return anondyn.Rotating(4) }
	return []struct {
		name      string
		n         int
		maxRounds int
		workers   int
		adv       func() anondyn.Adversary
	}{
		{"n=7", 7, 0, 0, complete},
		{"n=25", 25, 0, 0, complete},
		{"n=51", 51, 0, 0, complete},
		{"n=51/p=0.5", 51, 0, 0, func() anondyn.Adversary { return anondyn.Probabilistic(0.5, 1) }},
		{"n=51/p=0.1", 51, 0, 0, func() anondyn.Adversary { return anondyn.Probabilistic(0.1, 1) }},
		{"n=51/d=4", 51, 0, 0, d4},
		{"n=1025/p=8n", 1025, 0, 0, er2(1025)},
		{"n=1025/d=4", 1025, 0, 0, d4},
		{"n=4097/p=8n", 4097, 0, 0, er2(4097)},
		{"n=4097/d=4", 4097, 0, 0, d4},
		{"n=16385/p=8n", 16385, 256, 0, er2(16385)},
		{"n=16385/d=4", 16385, 256, 0, d4},
		{"n=16385/p=8n/par", 16385, 256, -1, er2(16385)},
		{"n=65537/p=8n", 65537, 128, 0, er2(65537)},
		{"n=65537/d=4", 65537, 128, 0, d4},
		{"n=65537/p=8n/par", 65537, 128, -1, er2(65537)},
	}
}

// BenchmarkEngineRound measures simulator round throughput: one full
// DAC run per case (round-capped at CSR scale), amortized per round
// and per delivered edge — ns/edge is the density-axis invariant the
// CSR core is gated on.
func BenchmarkEngineRound(b *testing.B) {
	for _, c := range engineRoundCases() {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			rounds, edges := 0, 0
			for i := 0; i < b.N; i++ {
				res, err := anondyn.Scenario{
					N: c.n, F: 0, Eps: 1e-3,
					Algorithm:    anondyn.AlgoDAC,
					Inputs:       anondyn.SpreadInputs(c.n),
					Adversary:    c.adv(),
					MaxRounds:    c.maxRounds,
					RoundWorkers: c.workers,
				}.Run()
				if err != nil {
					b.Fatal(err)
				}
				rounds += res.Rounds
				edges += res.MessagesDelivered
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(rounds), "ns/round")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(edges), "ns/edge")
		})
	}
}

// BenchmarkEngineRoundCompiled is BenchmarkEngineRound on the
// compile-once path: the scenario is compiled before the loop, so each
// iteration recycles the engine and the DAC processes and pays only the
// run itself — the per-seed cost a Monte-Carlo worker actually sees.
func BenchmarkEngineRoundCompiled(b *testing.B) {
	for _, n := range []int{7, 25, 51} {
		b.Run(sizeName(n), func(b *testing.B) {
			cs, err := anondyn.Scenario{
				N: n, F: 0, Eps: 1e-3,
				Algorithm: anondyn.AlgoDAC,
				Inputs:    anondyn.SpreadInputs(n),
				Adversary: anondyn.Complete(),
			}.Compile()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			rounds := 0
			for i := 0; i < b.N; i++ {
				res, err := cs.Run(int64(i), nil)
				if err != nil {
					b.Fatal(err)
				}
				rounds += res.Rounds
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(rounds), "ns/round")
		})
	}
}

// BenchmarkConcurrentEngineRound measures the goroutine-per-node engine
// on the same workload for comparison with the sequential one.
func BenchmarkConcurrentEngineRound(b *testing.B) {
	for _, n := range []int{7, 25} {
		b.Run(sizeName(n), func(b *testing.B) {
			b.ReportAllocs()
			rounds := 0
			for i := 0; i < b.N; i++ {
				res, err := anondyn.Scenario{
					N: n, F: 0, Eps: 1e-3,
					Algorithm:  anondyn.AlgoDAC,
					Inputs:     anondyn.SpreadInputs(n),
					Adversary:  anondyn.Complete(),
					Concurrent: true,
				}.Run()
				if err != nil {
					b.Fatal(err)
				}
				rounds += res.Rounds
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(rounds), "ns/round")
		})
	}
}

// BenchmarkDynaDegreeCheck measures the (T,D) checker on a recorded
// 512-round rotating trace.
func BenchmarkDynaDegreeCheck(b *testing.B) {
	n := 25
	res, err := anondyn.Scenario{
		N: n, F: 0, Eps: 0.5,
		Algorithm:    anondyn.AlgoDAC,
		PEndOverride: 1,
		Unchecked:    true,
		Inputs:       anondyn.SpreadInputs(n),
		Adversary:    anondyn.Rotating(3),
		KeepTrace:    true,
		MaxRounds:    512,
	}.Run()
	if err != nil {
		b.Fatal(err)
	}
	// Force the full budget of rounds by discarding decisions: rerun
	// rounds manually is overkill — pad the trace by repetition instead.
	tr := res.Trace
	for len(tr) < 512 {
		tr = append(tr, tr...)
	}
	tr = tr[:512]
	ff := make([]int, n)
	for i := range ff {
		ff[i] = i
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !anondyn.SatisfiesDynaDegree(tr, ff, 8, 3) {
			b.Fatal("property should hold")
		}
	}
}

func sizeName(n int) string { return fmt.Sprintf("n=%d", n) }
