package anondyn_test

import (
	"bytes"
	"reflect"
	"testing"

	"anondyn"
)

// TestFacadeReplayRoundTrip: record a randomized run through the
// facade, serialize the log, deserialize, replay — identical outputs.
func TestFacadeReplayRoundTrip(t *testing.T) {
	n := 7
	rec := anondyn.NewRecorder()
	base := anondyn.Scenario{
		N: n, F: 2, Eps: 1e-3,
		Algorithm: anondyn.AlgoDAC,
		Inputs:    anondyn.RandomInputs(n, 5),
		Adversary: anondyn.Probabilistic(0.5, 77),
		Crashes:   map[int]anondyn.Crash{3: anondyn.CrashAt(2)},
		Recorder:  rec,
	}
	orig, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !orig.Decided {
		t.Fatal("original run undecided")
	}

	var buf bytes.Buffer
	if err := anondyn.WriteTrace(&buf, rec); err != nil {
		t.Fatal(err)
	}
	events, err := anondyn.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := anondyn.ReplayEvents(n, events)
	if err != nil {
		t.Fatal(err)
	}

	rerun := base
	rerun.Recorder = nil
	rerun.Adversary = replay
	res, err := rerun.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig.Outputs, res.Outputs) {
		t.Errorf("outputs differ:\norig  %v\nreplay %v", orig.Outputs, res.Outputs)
	}
	if orig.Rounds != res.Rounds {
		t.Errorf("rounds: orig %d, replay %d", orig.Rounds, res.Rounds)
	}
}

func TestFacadeReplayDirect(t *testing.T) {
	rec := anondyn.NewRecorder()
	s := anondyn.Scenario{
		N: 5, F: 0, Eps: 0.1,
		Algorithm: anondyn.AlgoDAC,
		Inputs:    anondyn.SpreadInputs(5),
		Adversary: anondyn.Rotating(2),
		Recorder:  rec,
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	replay, err := anondyn.Replay(5, rec)
	if err != nil {
		t.Fatal(err)
	}
	if replay.Name() == "" {
		t.Error("empty replay name")
	}
	if _, err := anondyn.Replay(5, anondyn.NewRecorder()); err == nil {
		t.Error("empty recorder accepted")
	}
}
