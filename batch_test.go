package anondyn_test

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"anondyn"
)

// batchFamily is the scenario family shared by the determinism tests:
// seeded random inputs, a seeded probabilistic adversary, random ports
// — every source of randomness derives from the seed.
func batchFamily(seed int64) anondyn.Scenario {
	return anondyn.Scenario{
		N: 7, F: 3, Eps: 1e-3,
		Algorithm:        anondyn.AlgoDAC,
		Inputs:           anondyn.RandomInputs(7, seed),
		Adversary:        anondyn.Probabilistic(0.4, seed),
		RandomPorts:      true,
		Seed:             seed,
		MaxRounds:        5000,
		AccountBandwidth: true,
	}
}

// fingerprint renders everything a batch result exposes, so equality
// of fingerprints is byte-identity of per-seed outputs.
func fingerprint(seed int64, res *anondyn.Result) string {
	return fmt.Sprintf("seed=%d decided=%v rounds=%d outputs=%v decideRounds=%v bytes=%d msgs=%d",
		seed, res.Decided, res.Rounds, res.Outputs, res.DecideRound,
		res.BytesDelivered, res.MessagesDelivered)
}

// runBatchAt runs the family batch at one worker count and returns the
// per-seed fingerprints (in delivery order) plus the streamed aggregate.
func runBatchAt(t *testing.T, workers int) ([]string, anondyn.BatchReport) {
	t.Helper()
	stats := &anondyn.BatchStats{Eps: 1e-3}
	var prints []string
	retain := anondyn.NewRetainSink(16)
	err := anondyn.RunManyStream(anondyn.Seeds(16, 300), batchFamily,
		anondyn.Sinks(stats, retain),
		anondyn.BatchOptions{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	mr := retain.MultiResult()
	for i, res := range mr.Results {
		prints = append(prints, fingerprint(mr.Seeds[i], res))
	}
	return prints, stats.Report()
}

// TestRunManyStreamDeterministic is the tentpole contract: per-seed
// results and streamed aggregates are bit-identical at workers=1,
// workers=4 and workers=GOMAXPROCS.
func TestRunManyStreamDeterministic(t *testing.T) {
	basePrints, baseAgg := runBatchAt(t, 1)
	if len(basePrints) != 16 {
		t.Fatalf("retained %d results", len(basePrints))
	}
	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		prints, agg := runBatchAt(t, workers)
		if !reflect.DeepEqual(prints, basePrints) {
			t.Errorf("workers=%d: per-seed outputs differ from sequential run", workers)
		}
		if agg != baseAgg {
			t.Errorf("workers=%d: aggregate %+v differs from sequential %+v", workers, agg, baseAgg)
		}
	}
}

// TestRunManyMatchesStream pins the delegation: RunMany retains exactly
// what a RetainSink-backed stream delivers, in seed order.
func TestRunManyMatchesStream(t *testing.T) {
	seeds := anondyn.Seeds(8, 70)
	mr, err := anondyn.RunMany(seeds, batchFamily)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mr.Seeds, seeds) {
		t.Errorf("Seeds = %v, want %v", mr.Seeds, seeds)
	}
	for i, res := range mr.Results {
		want, err := batchFamily(seeds[i]).Run()
		if err != nil {
			t.Fatal(err)
		}
		if fingerprint(seeds[i], res) != fingerprint(seeds[i], want) {
			t.Errorf("seed %d: parallel result differs from direct run", seeds[i])
		}
	}
}

// TestBatchStatsMatchesMultiResult checks the streaming aggregates
// against the retained-batch accessors they replace.
func TestBatchStatsMatchesMultiResult(t *testing.T) {
	seeds := anondyn.Seeds(12, 900)
	stats := &anondyn.BatchStats{Eps: 1e-3}
	retain := anondyn.NewRetainSink(len(seeds))
	if err := anondyn.RunManyStream(seeds, batchFamily, anondyn.Sinks(stats, retain), anondyn.BatchOptions{}); err != nil {
		t.Fatal(err)
	}
	mr := retain.MultiResult()
	if stats.Runs() != len(seeds) || stats.Decided() != mr.DecidedCount() {
		t.Errorf("stats runs/decided = %d/%d, MultiResult decided = %d",
			stats.Runs(), stats.Decided(), mr.DecidedCount())
	}
	if stats.DecidedAll() != mr.DecidedAll() {
		t.Error("DecidedAll mismatch")
	}
	if stats.Violations() != mr.Violations(1e-3) {
		t.Errorf("violations = %d, want %d", stats.Violations(), mr.Violations(1e-3))
	}
	if got, want := stats.Rounds(), mr.Rounds(); got != want {
		t.Errorf("rounds summary = %+v, want %+v", got, want)
	}
}

// TestRunManyStreamCollectsErrors: invalid scenarios surface as a
// joined error while valid seeds still stream through.
func TestRunManyStreamCollectsErrors(t *testing.T) {
	stats := &anondyn.BatchStats{}
	err := anondyn.RunManyStream(anondyn.Seeds(4, 0), func(seed int64) anondyn.Scenario {
		if seed == 2 {
			return anondyn.Scenario{} // invalid
		}
		return batchFamily(seed)
	}, stats, anondyn.BatchOptions{Workers: 2})
	if err == nil {
		t.Fatal("invalid scenario accepted")
	}
	if !errors.Is(err, anondyn.ErrScenario) {
		t.Errorf("err = %v, want ErrScenario in the chain", err)
	}
	if stats.Runs() != 3 {
		t.Errorf("streamed %d valid runs, want 3", stats.Runs())
	}
}

// TestRunManyStreamProgress checks the ordered progress callback.
func TestRunManyStreamProgress(t *testing.T) {
	var last, calls int
	err := anondyn.RunManyStream(anondyn.Seeds(6, 0), batchFamily, &anondyn.BatchStats{},
		anondyn.BatchOptions{Workers: 3, OnProgress: func(done, total int) {
			if total != 6 || done != last+1 {
				t.Errorf("progress (%d, %d) after %d", done, total, last)
			}
			last = done
			calls++
		}})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 6 {
		t.Errorf("progress called %d times", calls)
	}
}
