package anondyn

import (
	"errors"
	"fmt"
	"math/rand"

	"anondyn/internal/baseline"
	"anondyn/internal/core"
	"anondyn/internal/fault"
	"anondyn/internal/network"
	"anondyn/internal/sim"
)

// ErrScenario reports an invalid Scenario.
var ErrScenario = errors.New("anondyn: invalid scenario")

// Scenario describes one execution: the algorithm and its parameters,
// the inputs, the message adversary, and the fault pattern. The zero
// value is not runnable; fill in at least N, Eps, Algorithm, Inputs and
// Adversary.
type Scenario struct {
	// N is the network size; F the fault bound the algorithm is
	// configured for (DBAC needs it; DAC/crash scenarios use it for
	// validation).
	N int
	F int
	// Eps is the ε of ε-agreement.
	Eps float64
	// Algorithm picks the protocol every non-Byzantine node runs.
	Algorithm Algo

	// PiggybackWindow is K for AlgoDBACPiggyback.
	PiggybackWindow int
	// MegaT is the block length T for AlgoMegaRound.
	MegaT int

	// PEndOverride, when > 0, replaces the paper-derived output phase
	// (Equation 2 for DAC-family, Equation 6 for DBAC-family). The
	// Equation 6 bound grows like 2ⁿ·ln(1/ε); measurement runs on larger
	// n set an explicit budget instead and verify the achieved range.
	PEndOverride int
	// QuorumOverride, when > 0, replaces the algorithm's quorum. This
	// models the hypothetical below-threshold algorithms of the
	// necessity proofs (Theorems 9/10) and skips resilience validation.
	// Never set it when you want a correct protocol.
	QuorumOverride int
	// Unchecked skips the n-vs-f resilience validation (necessity
	// experiments run deliberately out-of-bounds configurations).
	Unchecked bool

	// Inputs holds every node's initial value in [0,1]; entries at
	// Byzantine indices are ignored.
	Inputs []float64

	// Adversary picks E(t) each round.
	Adversary Adversary
	// Crashes schedules crash faults by node.
	Crashes map[int]Crash
	// Byzantine assigns strategies to Byzantine nodes.
	Byzantine map[int]Strategy

	// MaxRounds caps the run (0 = engine default).
	MaxRounds int

	// RandomPorts draws an independent random port numbering per node
	// from Seed; otherwise every node uses the identity numbering.
	RandomPorts bool
	Seed        int64

	// ShuffleDelivery randomizes intra-round delivery order per
	// receiver (deterministically from Seed); the default is ascending
	// port order. Correctness never depends on the choice.
	ShuffleDelivery bool

	// Concurrent runs the goroutine-per-node engine instead of the
	// sequential one (identical results, parallel execution).
	Concurrent bool

	// RoundWorkers shards the sequential engine's receiver loop across
	// a persistent worker pool (0/1: sequential, -1: GOMAXPROCS);
	// results are bit-for-bit identical. See sim.Config.RoundWorkers.
	RoundWorkers int

	// ForceCSR forces the engine's per-round edge scratch into the
	// sparse CSR representation below the automatic size threshold;
	// results are bit-for-bit identical. See sim.Config.ForceCSR.
	ForceCSR bool

	// Metrics, when non-nil, receives one sample per round from the
	// engine (see sim.Hooks.Metrics). Attaching it never changes results
	// or engine code paths — pinned by the metrics-parity property
	// tests — so a shared MetricsCollector can watch a whole batch live.
	Metrics MetricsSink

	// Tracker, when non-nil, reconstructs the V(p) multisets during the
	// run (it is seeded with the inputs automatically).
	Tracker *PhaseTracker
	// Series, when non-nil, records the per-round range of running
	// nodes' values — the round-resolution convergence curve (figure
	// F1).
	Series *RangeSeries
	// Recorder, when non-nil, captures the execution event log.
	Recorder *Recorder
	// KeepTrace retains E(t) per round in the Result.
	KeepTrace bool
	// AccountBandwidth tallies delivered wire bytes in the Result.
	AccountBandwidth bool
	// MaxMessageBytes, when > 0, drops any message whose wire encoding
	// exceeds the per-link bandwidth budget (§VII; experiment E11).
	MaxMessageBytes int
	// LinkBandwidth optionally gives every directed link its own byte
	// budget (≤ 0 = unlimited); it overrides MaxMessageBytes.
	LinkBandwidth func(from, to int) int
}

// Run executes the scenario and returns its result.
func (s Scenario) Run() (*Result, error) {
	return s.runOn(&engineBox{})
}

// engineBox carries a recyclable engine between runs (sequential and
// concurrent each have their own slot). The batch harness gives every
// worker one box, so a thousand-seed batch builds the engine's views
// and scratch once per worker instead of once per seed.
type engineBox struct {
	eng  *sim.Engine
	ceng *sim.ConcurrentEngine
}

// runOn executes the scenario, recycling the box's engine when one is
// already there (a Reset engine is indistinguishable from a fresh one —
// asserted by the recycle tests). Concurrent engines recycle their
// buffers the same way; only the per-run goroutines are rebuilt.
func (s Scenario) runOn(box *engineBox) (*Result, error) {
	cfg, err := s.build()
	if err != nil {
		return nil, err
	}
	if s.Concurrent {
		if box.ceng == nil {
			box.ceng, err = sim.NewConcurrentEngine(*cfg)
			if err != nil {
				return nil, err
			}
		} else if err := box.ceng.Reset(*cfg); err != nil {
			return nil, err
		}
		return box.ceng.Run(), nil
	}
	if box.eng == nil {
		box.eng, err = sim.NewEngine(*cfg)
		if err != nil {
			return nil, err
		}
	} else if err := box.eng.Reset(*cfg); err != nil {
		return nil, err
	}
	return box.eng.Run(), nil
}

// validate checks the scenario's static structure.
func (s Scenario) validate() error {
	if s.N < 1 {
		return fmt.Errorf("%w: n=%d", ErrScenario, s.N)
	}
	if len(s.Inputs) != s.N {
		return fmt.Errorf("%w: %d inputs for n=%d", ErrScenario, len(s.Inputs), s.N)
	}
	if s.Adversary == nil {
		return fmt.Errorf("%w: nil adversary", ErrScenario)
	}
	if s.Algorithm == 0 {
		return fmt.Errorf("%w: no algorithm selected", ErrScenario)
	}
	if s.Eps == 0 && s.PEndOverride <= 0 && s.Algorithm != AlgoFloodMin {
		return fmt.Errorf("%w: neither Eps nor PEndOverride set", ErrScenario)
	}
	if !s.Unchecked && s.QuorumOverride == 0 {
		switch s.Algorithm {
		case AlgoDAC, AlgoDACNoJump, AlgoMegaRound, AlgoFullInfo, AlgoReliableIterated:
			if err := core.ValidateCrash(s.N, s.F); err != nil {
				return err
			}
		case AlgoDBAC, AlgoDBACPiggyback:
			if err := core.ValidateByz(s.N, s.F); err != nil {
				return err
			}
		}
	}
	return nil
}

// portsFor resolves the port numberings for one run seed.
func (s Scenario) portsFor(seed int64) network.Ports {
	if s.RandomPorts {
		return network.RandomPorts(s.N, rand.New(rand.NewSource(seed)))
	}
	return network.IdentityPorts(s.N)
}

// buildProcs constructs the per-node processes for the given ports and
// the scenario's current Inputs, seeding the optional tracker.
func (s Scenario) buildProcs(ports network.Ports, byz map[int]fault.Strategy) ([]core.Process, error) {
	procs := make([]core.Process, s.N)
	for i := 0; i < s.N; i++ {
		if _, isByz := byz[i]; isByz {
			continue
		}
		p, err := s.newProc(i, ports[i].Port(i))
		if err != nil {
			return nil, fmt.Errorf("node %d: %w", i, err)
		}
		procs[i] = p
		if s.Tracker != nil {
			s.Tracker.SetInput(i, s.Inputs[i])
		}
	}
	return procs, nil
}

// observer folds the optional collectors into one engine Observer.
func (s Scenario) observer() sim.Observer {
	var observers []sim.Observer
	if s.Tracker != nil {
		observers = append(observers, s.Tracker)
	}
	if s.Series != nil {
		observers = append(observers, s.Series)
	}
	switch len(observers) {
	case 0:
		return nil // leave nil (avoid a typed-nil Observer interface)
	case 1:
		return observers[0]
	default:
		return multiObserver(observers)
	}
}

// config assembles the engine configuration from prepared parts.
func (s Scenario) config(procs []core.Process, ports network.Ports, byz map[int]fault.Strategy, crashes fault.Schedule, seed int64) *sim.Config {
	f := s.F
	if f == 0 {
		f = len(byz) + len(crashes) // pass validation for f-unset scenarios
	}
	return &sim.Config{
		N:         s.N,
		F:         f,
		Procs:     procs,
		Byzantine: byz,
		Crashes:   crashes,
		Adversary: s.Adversary,
		Ports:     ports,
		MaxRounds: s.MaxRounds,
		Hooks: sim.Hooks{
			Observer: s.observer(),
			Recorder: s.Recorder,
			Metrics:  s.Metrics,
		},
		KeepTrace:        s.KeepTrace,
		AccountBandwidth: s.AccountBandwidth,
		MaxMessageBytes:  s.MaxMessageBytes,
		LinkBandwidth:    s.LinkBandwidth,
		ShuffleDelivery:  s.ShuffleDelivery,
		ShuffleSeed:      seed,
		RoundWorkers:     s.RoundWorkers,
		ForceCSR:         s.ForceCSR,
	}
}

// byzStrategies copies the Byzantine assignment into the fault-layer map.
func (s Scenario) byzStrategies() map[int]fault.Strategy {
	byz := make(map[int]fault.Strategy, len(s.Byzantine))
	for i, strat := range s.Byzantine {
		byz[i] = strat
	}
	return byz
}

// crashSchedule copies the crash assignment into the fault-layer schedule.
func (s Scenario) crashSchedule() fault.Schedule {
	crashes := fault.Schedule{}
	for node, c := range s.Crashes {
		crashes[node] = c
	}
	return crashes
}

// build assembles the engine configuration.
func (s Scenario) build() (*sim.Config, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	ports := s.portsFor(s.Seed)
	byz := s.byzStrategies()
	procs, err := s.buildProcs(ports, byz)
	if err != nil {
		return nil, err
	}
	return s.config(procs, ports, byz, s.crashSchedule(), s.Seed), nil
}

// newProc instantiates the selected algorithm for one node.
func (s Scenario) newProc(i, selfPort int) (core.Process, error) {
	input := s.Inputs[i]
	switch s.Algorithm {
	case AlgoDAC:
		switch {
		case s.QuorumOverride > 0:
			return core.NewDACCustom(s.N, selfPort, s.pEndDAC(), s.QuorumOverride, input)
		case s.Unchecked:
			// Below-threshold configurations with the paper quorum: the
			// checked constructors would reject n < 2f+1.
			return core.NewDACCustom(s.N, selfPort, s.pEndDAC(), core.CrashQuorum(s.N), input)
		case s.PEndOverride > 0:
			return core.NewDACPhases(s.N, selfPort, s.PEndOverride, input)
		default:
			return core.NewDAC(s.N, selfPort, input, s.Eps)
		}
	case AlgoDBAC:
		switch {
		case s.QuorumOverride > 0:
			return core.NewDBACCustom(s.N, s.F, selfPort, s.pEndDBAC(), s.QuorumOverride, input)
		case s.Unchecked:
			return core.NewDBACCustom(s.N, s.F, selfPort, s.pEndDBAC(), core.ByzQuorum(s.N, s.F), input)
		case s.PEndOverride > 0:
			return core.NewDBACPhases(s.N, s.F, selfPort, s.PEndOverride, input)
		default:
			return core.NewDBAC(s.N, s.F, selfPort, input, s.Eps)
		}
	case AlgoDBACPiggyback:
		if s.PEndOverride > 0 {
			return core.NewDBACPiggybackPhases(s.N, s.F, selfPort, s.PiggybackWindow, s.PEndOverride, input)
		}
		return core.NewDBACPiggyback(s.N, s.F, selfPort, s.PiggybackWindow, input, s.Eps)
	case AlgoMegaRound:
		t := s.MegaT
		if t == 0 {
			t = 1
		}
		return baseline.NewMegaRound(s.N, t, selfPort, input, s.Eps)
	case AlgoFullInfo:
		return baseline.NewFullInfo(s.N, selfPort, input, s.Eps)
	case AlgoReliableIterated:
		return baseline.NewReliableIterated(s.N, input, s.Eps)
	case AlgoBACReliable:
		return baseline.NewBACReliable(s.N, s.F, input, s.Eps)
	case AlgoFloodMin:
		rounds := s.PEndOverride
		if rounds <= 0 {
			rounds = s.N // ≥ f+1 for any admissible f
		}
		return baseline.NewFloodMin(rounds, input)
	case AlgoDACNoJump:
		return core.NewDACNoJumpPhases(s.N, selfPort, s.pEndDAC(), input)
	default:
		return nil, fmt.Errorf("%w: unknown algorithm %d", ErrScenario, int(s.Algorithm))
	}
}

// pEndDAC resolves the DAC-family output phase.
func (s Scenario) pEndDAC() int {
	if s.PEndOverride > 0 {
		return s.PEndOverride
	}
	return core.PEndDAC(s.Eps)
}

// pEndDBAC resolves the DBAC-family output phase.
func (s Scenario) pEndDBAC() int {
	if s.PEndOverride > 0 {
		return s.PEndOverride
	}
	return core.PEndDBAC(s.Eps, s.N)
}

// multiObserver fans engine callbacks out to several observers,
// forwarding the optional round hook to those that implement it.
type multiObserver []sim.Observer

func (m multiObserver) OnPhaseEnter(node, from, to int, value float64, round int) {
	for _, o := range m {
		o.OnPhaseEnter(node, from, to, value, round)
	}
}

func (m multiObserver) OnDecide(node int, value float64, round int) {
	for _, o := range m {
		o.OnDecide(node, value, round)
	}
}

func (m multiObserver) OnRoundEnd(round int, values sim.RoundValues) {
	for _, o := range m {
		if ro, ok := o.(sim.RoundObserver); ok {
			ro.OnRoundEnd(round, values)
		}
	}
}

// SpreadInputs returns n inputs evenly spread over [0,1]: 0, 1/(n−1), …,
// 1 — the canonical worst-ish-case spread used across the experiments.
func SpreadInputs(n int) []float64 {
	in := make([]float64, n)
	if n == 1 {
		return in
	}
	for i := range in {
		in[i] = float64(i) / float64(n-1)
	}
	return in
}

// SplitInputs returns n inputs where the first k are 0 and the rest 1 —
// the two-camp inputs of the impossibility constructions.
func SplitInputs(n, k int) []float64 {
	in := make([]float64, n)
	for i := k; i < n; i++ {
		in[i] = 1
	}
	return in
}

// RandomInputs returns n inputs drawn uniformly from [0,1].
func RandomInputs(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	in := make([]float64, n)
	for i := range in {
		in[i] = rng.Float64()
	}
	return in
}

// PEndDAC re-exports Equation (2): the DAC output phase for ε.
func PEndDAC(eps float64) int { return core.PEndDAC(eps) }

// PEndDBAC re-exports Equation (6): the DBAC output phase bound for ε, n.
func PEndDBAC(eps float64, n int) int { return core.PEndDBAC(eps, n) }

// CrashDegree re-exports the DAC dynaDegree threshold ⌊n/2⌋.
func CrashDegree(n int) int { return core.CrashDegree(n) }

// ByzDegree re-exports the DBAC dynaDegree threshold ⌊(n+3f)/2⌋.
func ByzDegree(n, f int) int { return core.ByzDegree(n, f) }
