// Package anondyn is the public face of this reproduction of
// "Fault-tolerant Consensus in Anonymous Dynamic Network" (Zhang &
// Tseng, ICDCS 2024): approximate consensus among n anonymous nodes in
// synchronous rounds, under a dynamic message adversary that picks the
// reliable links E(t) every round, with up to f crash or Byzantine
// faults.
//
// The package wraps the internal building blocks behind a Scenario: pick
// an algorithm (the paper's DAC or DBAC, the §VII piggyback extension,
// or one of the prior-work baselines), an adversary, inputs, and faults,
// then Run it:
//
//	s := anondyn.Scenario{
//	    N: 7, F: 2, Eps: 1e-3,
//	    Algorithm: anondyn.AlgoDAC,
//	    Inputs:    anondyn.SpreadInputs(7),
//	    Adversary: anondyn.Rotating(3),
//	    Crashes:   map[int]anondyn.Crash{0: anondyn.CrashAt(4)},
//	}
//	res, err := s.Run()
//
// Results carry outputs, decision rounds, message accounting, and the
// property checks (validity, ε-agreement) of Definition 3.
package anondyn

import (
	"fmt"
	"io"
	"strings"

	"anondyn/internal/adversary"
	"anondyn/internal/analysis"
	"anondyn/internal/fault"
	"anondyn/internal/metrics"
	"anondyn/internal/network"
	"anondyn/internal/sim"
	"anondyn/internal/trace"
)

// Algo selects the consensus algorithm a Scenario runs.
type Algo int

// Supported algorithms.
const (
	// AlgoDAC is Algorithm 1: crash-tolerant Dynamic Approximate
	// Consensus (n ≥ 2f+1, (T,⌊n/2⌋)-dynaDegree).
	AlgoDAC Algo = iota + 1
	// AlgoDBAC is Algorithm 2: Dynamic Byzantine Approximate Consensus
	// (n ≥ 5f+1, (T,⌊(n+3f)/2⌋)-dynaDegree).
	AlgoDBAC
	// AlgoDBACPiggyback is the §VII bandwidth/convergence trade-off
	// extension of DBAC with a bounded history window.
	AlgoDBACPiggyback
	// AlgoMegaRound is the strawman that knows T and batches T rounds
	// into one update (baseline).
	AlgoMegaRound
	// AlgoFullInfo is the §VII unlimited-bandwidth full-information
	// simulation (baseline).
	AlgoFullInfo
	// AlgoReliableIterated is classical reliable-channel iterated
	// averaging, Dolev et al. style (baseline; assumes no adversary).
	AlgoReliableIterated
	// AlgoBACReliable is reliable-channel Byzantine iterated averaging
	// (baseline; assumes no adversary).
	AlgoBACReliable
	// AlgoFloodMin is classical binary EXACT consensus by minimum
	// flooding — used by the Corollary 1 experiment (E9) to show exact
	// consensus failing where approximate consensus survives.
	AlgoFloodMin
	// AlgoDACNoJump is the ablation of DAC without the jump rule
	// (Algorithm 1 lines 5–8 removed) — used by experiment E12 to show
	// why adopting future states is essential under message loss.
	AlgoDACNoJump
)

// String names the algorithm for tables and logs.
func (a Algo) String() string {
	switch a {
	case AlgoDAC:
		return "DAC"
	case AlgoDBAC:
		return "DBAC"
	case AlgoDBACPiggyback:
		return "DBAC+pb"
	case AlgoMegaRound:
		return "MegaRound"
	case AlgoFullInfo:
		return "FullInfo"
	case AlgoReliableIterated:
		return "RelIter"
	case AlgoBACReliable:
		return "BACRel"
	case AlgoFloodMin:
		return "FloodMin"
	case AlgoDACNoJump:
		return "DAC-nojump"
	default:
		return "unknown"
	}
}

// ParseAlgo resolves the CLI spelling of an algorithm name (dac, dbac,
// dbac-pb, megaround, fullinfo, reliter, bacrel, floodmin, dac-nojump),
// case-insensitively.
func ParseAlgo(name string) (Algo, error) {
	switch strings.ToLower(name) {
	case "dac":
		return AlgoDAC, nil
	case "dbac":
		return AlgoDBAC, nil
	case "dbac-pb":
		return AlgoDBACPiggyback, nil
	case "megaround":
		return AlgoMegaRound, nil
	case "fullinfo":
		return AlgoFullInfo, nil
	case "reliter":
		return AlgoReliableIterated, nil
	case "bacrel":
		return AlgoBACReliable, nil
	case "floodmin":
		return AlgoFloodMin, nil
	case "dac-nojump":
		return AlgoDACNoJump, nil
	default:
		return 0, fmt.Errorf("anondyn: unknown algorithm %q", name)
	}
}

// Re-exported building-block types. The aliases let callers hold and
// construct these values through the public package; the implementations
// live in internal packages.
type (
	// Adversary chooses the reliable link set E(t) each round.
	Adversary = adversary.Adversary
	// InPlaceAdversary is the optional zero-allocation fast path: the
	// engine hands adversaries implementing it an engine-owned scratch
	// EdgeSet to overwrite instead of allocating one per round. Every
	// per-round-allocating adversary in this package implements it
	// (fixed-graph ones return prebuilt sets by pointer instead, which
	// is cheaper still); plain Adversary implementations keep working
	// via the fallback path.
	InPlaceAdversary = adversary.InPlace
	// AdversaryReseeder is implemented by randomized adversaries whose
	// stream CompiledScenario.Run rewinds per seed, letting one
	// instance serve a whole Monte-Carlo batch reproducibly.
	AdversaryReseeder = adversary.Reseeder
	// Crash schedules one node's crash fault.
	Crash = fault.Crash
	// Strategy drives one Byzantine node.
	Strategy = fault.Strategy
	// Result summarizes an execution.
	Result = sim.Result
	// PhaseTracker reconstructs the paper's V(p) multisets from a run.
	PhaseTracker = analysis.PhaseTracker
	// RangeSeries records the per-round convergence curve.
	RangeSeries = analysis.RangeSeries
	// Table renders experiment outputs.
	Table = analysis.Table
	// Recorder captures the execution event log.
	Recorder = trace.Recorder
	// Event is one entry of a recorded execution log.
	Event = trace.Event
	// EdgeSet is one round's directed communication graph.
	EdgeSet = network.EdgeSet
	// Trace is a finite dynamic-graph prefix, E(0), E(1), ….
	Trace = network.Trace
	// MetricsSink receives live metrics emissions (one sample per engine
	// round, one per completed batch run). Pass as Scenario.Metrics or
	// BatchOptions.Metrics; attaching a sink never changes results.
	MetricsSink = metrics.Sink
	// MetricsCollector is the lock-cheap aggregating MetricsSink:
	// atomics on the hot path, snapshots on demand, NDJSON streaming via
	// the metrics package.
	MetricsCollector = metrics.Collector
	// MetricsSnapshot is one point-in-time aggregate of a collector;
	// every wall-clock-derived field lives in its Timing sub-struct.
	MetricsSnapshot = metrics.Snapshot
)

// Crash-fault constructors (re-exports).
var (
	// CrashAt schedules a clean crash at the end of the given round.
	CrashAt = fault.CrashAt
	// CrashSilent schedules a crash that suppresses the final broadcast.
	CrashSilent = fault.CrashSilent
	// CrashPartial schedules a crash whose final broadcast reaches only
	// the listed receivers.
	CrashPartial = fault.CrashPartial
)

// NewPhaseTracker returns a tracker to pass as Scenario.Tracker.
func NewPhaseTracker() *PhaseTracker { return analysis.NewPhaseTracker() }

// NewRangeSeries returns a per-round convergence recorder to pass as
// Scenario.Series.
func NewRangeSeries() *RangeSeries { return analysis.NewRangeSeries() }

// NewRecorder returns an event recorder to pass as Scenario.Recorder.
func NewRecorder() *Recorder { return trace.NewRecorder() }

// NewMetricsCollector returns a collector to pass as Scenario.Metrics
// or BatchOptions.Metrics. One collector may be shared by any number of
// concurrent runs and pools.
func NewMetricsCollector() *MetricsCollector { return metrics.NewCollector() }

// Replay wraps a recorded execution's edge sets as an adversary: re-run
// the same deterministic algorithm with the same inputs and ports
// against it and the execution reproduces exactly — including
// executions originally driven by adaptive or randomized adversaries.
func Replay(n int, rec *Recorder) (Adversary, error) {
	return trace.NewReplay(n, rec.Events())
}

// ReplayEvents is Replay for a deserialized event log (see WriteTrace /
// ReadTrace).
func ReplayEvents(n int, events []Event) (Adversary, error) {
	return trace.NewReplay(n, events)
}

// WriteTrace serializes a recorded event log as JSON Lines.
func WriteTrace(w io.Writer, rec *Recorder) error {
	return trace.WriteJSONL(w, rec.Events())
}

// ReadTrace parses a JSON Lines event log.
func ReadTrace(r io.Reader) ([]Event, error) { return trace.ReadJSONL(r) }
