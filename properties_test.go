package anondyn_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"anondyn"
)

// End-to-end property tests: for randomized inputs, adversaries, fault
// patterns and port numberings, the three consensus properties of
// Definition 3 must hold whenever the run is within the paper's
// conditions (resilience bound + dynaDegree threshold).

// TestPropertyDACTheorem: random inputs, random crash schedules within
// f, randomized degree-guaranteeing adversaries, random ports — DAC must
// terminate, stay valid, and ε-agree (Theorems in §IV).
func TestPropertyDACTheorem(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(101))}
	property := func(seed int64, nRaw, advPick uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%8*2 + 5 // odd sizes 5..19
		f := (n - 1) / 2
		eps := 1e-3

		// Random crash schedule within the budget.
		crashes := make(map[int]anondyn.Crash)
		nCrash := rng.Intn(f + 1)
		perm := rng.Perm(n)
		for i := 0; i < nCrash; i++ {
			node := perm[i]
			switch rng.Intn(3) {
			case 0:
				crashes[node] = anondyn.CrashAt(rng.Intn(12))
			case 1:
				crashes[node] = anondyn.CrashSilent(rng.Intn(12))
			default:
				// Partial delivery to a random subset.
				var subset []int
				for v := 0; v < n; v++ {
					if v != node && rng.Intn(2) == 0 {
						subset = append(subset, v)
					}
				}
				crashes[node] = anondyn.CrashPartial(rng.Intn(12), subset...)
			}
		}

		var adv anondyn.Adversary
		switch advPick % 3 {
		case 0:
			adv = anondyn.Complete()
		case 1:
			adv = anondyn.Rotating(anondyn.CrashDegree(n))
		default:
			adv = anondyn.RandomDegree(3, anondyn.CrashDegree(n), 0.1, seed)
		}

		res, err := anondyn.Scenario{
			N: n, F: f, Eps: eps,
			Algorithm:   anondyn.AlgoDAC,
			Inputs:      anondyn.RandomInputs(n, seed+1),
			Adversary:   adv,
			Crashes:     crashes,
			RandomPorts: true,
			Seed:        seed + 2,
			MaxRounds:   5000,
		}.Run()
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if !res.Decided {
			t.Logf("seed %d n=%d: undecided in %d rounds", seed, n, res.Rounds)
			return false
		}
		if !res.Valid() {
			t.Logf("seed %d n=%d: validity violated: %v", seed, n, res.Outputs)
			return false
		}
		if !res.EpsAgreement(eps) {
			t.Logf("seed %d n=%d: range %g > ε", seed, n, res.OutputRange())
			return false
		}
		return true
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}

// TestPropertyDBACTheorem: random Byzantine strategies within f under
// threshold-degree adversaries — DBAC must terminate, stay inside the
// fault-free hull, and converge (§V).
func TestPropertyDBACTheorem(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(202))}
	property := func(seed int64, pick uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nfs := []struct{ n, f int }{{6, 1}, {11, 2}, {16, 3}}
		nf := nfs[int(pick)%len(nfs)]
		n, f := nf.n, nf.f
		eps := 1e-2

		byz := make(map[int]anondyn.Strategy)
		perm := rng.Perm(n)
		strategies := []anondyn.Strategy{
			anondyn.Silent(),
			anondyn.Extremist(float64(rng.Intn(2))),
			anondyn.Equivocator(0, 1),
			anondyn.RandomNoise(seed),
			anondyn.Laggard(rng.Float64()),
		}
		for i := 0; i < f; i++ {
			byz[perm[i]] = strategies[rng.Intn(len(strategies))]
		}

		var adv anondyn.Adversary
		if pick%2 == 0 {
			adv = anondyn.Complete()
		} else {
			adv = anondyn.Rotating(anondyn.ByzDegree(n, f))
		}

		inputs := anondyn.RandomInputs(n, seed+1)
		res, err := anondyn.Scenario{
			N: n, F: f, Eps: eps,
			Algorithm:    anondyn.AlgoDBAC,
			PEndOverride: 16,
			Inputs:       inputs,
			Adversary:    adv,
			Byzantine:    byz,
			RandomPorts:  true,
			Seed:         seed + 2,
			MaxRounds:    5000,
		}.Run()
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if !res.Decided {
			t.Logf("seed %d n=%d: undecided", seed, n)
			return false
		}
		// Validity against the NON-Byzantine hull only.
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, x := range inputs {
			if _, isByz := byz[i]; isByz {
				continue
			}
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		for _, node := range res.FaultFree {
			v := res.Outputs[node]
			if v < lo-1e-9 || v > hi+1e-9 {
				t.Logf("seed %d: output %g outside non-Byzantine hull [%g,%g]", seed, v, lo, hi)
				return false
			}
		}
		// 16 phases at rate ≈1/2 crushes the range far below ε=1e-2.
		if !res.EpsAgreement(eps) {
			t.Logf("seed %d: range %g > ε", seed, res.OutputRange())
			return false
		}
		return true
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}

// TestPropertyRecordedDynaDegree: whatever a degree-guaranteeing
// adversary actually produced, the recorded trace must verify the
// property it promises.
func TestPropertyRecordedDynaDegree(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(303))}
	property := func(seed int64, dRaw, bRaw uint8) bool {
		n := 9
		d := int(dRaw)%(n-1) + 1
		block := int(bRaw)%4 + 1
		res, err := anondyn.Scenario{
			N: n, F: 0, Eps: 0.5,
			Algorithm:    anondyn.AlgoDAC,
			PEndOverride: 2,
			Unchecked:    true,
			Inputs:       anondyn.RandomInputs(n, seed),
			Adversary:    anondyn.RandomDegree(block, d, 0.05, seed),
			KeepTrace:    true,
			MaxRounds:    6 * block,
		}.Run()
		if err != nil {
			return false
		}
		if len(res.Trace) < 2*block-1 {
			return true // not enough rounds recorded to check a window
		}
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return anondyn.SatisfiesDynaDegree(res.Trace, all, 2*block-1, d)
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}
